"""Atom-algebra microbenchmarks — packed bitsets vs frozensets, fused pass.

Two throughput figures for the packed-bitset atom universe:

* **bulk set ops** — the AtomSet algebra (``& | -`` plus covers/overlaps
  membership tests) over the atomized rule matches of a real dataset,
  against a *raw frozenset* baseline running the identical op sequence on
  the same id sets.  The baseline is conservative: the old AtomSet paid
  per-coerce re-resolution and wrapper overhead *on top of* frozenset
  costs, so the measured ratio understates the end-to-end win.

* **fused LEC+count passes** — full idempotent ``_recompute`` sweeps over
  every counting node of a converged FT-4 deployment, atoms (the fused
  mask kernel) vs bdd (the generic per-piece tree walk).  This is the
  steady-state verifier inner loop: LEC split, CIBIn lookups, ⊕/⊗
  combination, verdict, announce-diff.

Every run updates its row (keyed on scale + workload) in
``BENCH_atom_ops.json`` in the repo root.  ``REPRO_BENCH_SCALE=smoke`` is
the CI bitrot check — tiny workload, records without asserting; ``small``
(default) and ``large`` assert the ≥2x bulk-op throughput floor.
"""

import random
import time
from pathlib import Path

import pytest

from benchmarks._common import (
    SCALE,
    fresh_rules,
    print_header,
    print_row,
    record_trajectory,
)
from repro.datasets import build_dataset
from repro.sim import TulkunRunner

# Bulk-op acceptance floor (bitset ops/sec over frozenset ops/sec).  Smoke
# rows carry no floor: the workload is too small to time meaningfully.
RATIO_FLOORS = {"smoke": None, "small": 2.0, "large": 2.0}

# Bulk ops run over INet2 (many distinct prefixes -> a wide atom universe);
# (dataset, pair_limit, rule_multiplier, rounds)
OP_WORKLOADS = {
    "smoke": ("INet2", 6, 4, 10),
    "small": ("INet2", 12, 32, 60),
    "large": ("INet2", 12, 64, 120),
}
# Fused passes run on the FT-4 deployment the churn benchmark uses;
# (dataset, pair_limit, rule_multiplier, rounds)
PASS_WORKLOADS = {
    "smoke": ("FT-4", 4, 2, 2),
    "small": ("FT-4", 16, 8, 10),
    "large": ("FT-4", 24, 16, 20),
}

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_atom_ops.json"
TRAJECTORY_KEY = ("scale", "benchmark", "dataset", "pair_limit",
                  "rule_multiplier")

NUM_OPERANDS = 96


def _operand_regions(ds, seed=7):
    """CIB-entry-shaped operands: unions of sampled rule matches.

    The hot-path sets are interests, CIB entries and LEC pieces — regions
    spanning *many* atoms, not single rule matches.  Sampling unions of
    the dataset's atomized matches reproduces that shape (mixed sizes up
    to roughly half the universe) over one shared index.
    """
    index = ds.ctx.atom_index()
    matches = []
    for rules in ds.rules_by_device.values():
        for rule in rules:
            matches.append(index.atomize(rule.match))
    matches = list({aset.mask(): aset for aset in matches}.values())
    rng = random.Random(seed)
    operands = []
    for _ in range(NUM_OPERANDS):
        k = rng.randint(2, max(3, len(matches) // 3))
        operands.append(index.union(rng.sample(matches, min(k, len(matches)))))
    return index, operands


def _run_op_sequence(operands, rounds):
    """The timed kernel: pairwise algebra + membership tests, cyclically."""
    n = len(operands)
    ops = 0
    acc = operands[0]
    start = time.perf_counter()
    for r in range(rounds):
        for i in range(n):
            a = operands[i]
            b = operands[(i + r + 1) % n]
            x = a & b
            y = a | b
            z = a - b
            acc = (acc | x) - z if (i & 1) else acc
            ops += 3
    wall = time.perf_counter() - start
    return ops / wall, wall, acc


def _run_test_sequence(operands, covers, overlaps, rounds):
    """Membership predicates (covers/overlaps) over the same pair stream."""
    n = len(operands)
    ops = 0
    sink = 0
    start = time.perf_counter()
    for r in range(rounds):
        for i in range(n):
            a = operands[i]
            b = operands[(i + r + 1) % n]
            sink += covers(a, b)
            sink += overlaps(a, b)
            ops += 2
    wall = time.perf_counter() - start
    return ops / wall, sink


@pytest.mark.benchmark(group="atom_ops")
def test_bulk_set_op_throughput(benchmark):
    name, pair_limit, multiplier, rounds = OP_WORKLOADS[SCALE]
    ds = build_dataset(
        name, pair_limit=pair_limit, seed=3, rule_multiplier=multiplier
    )
    index, asets = _operand_regions(ds)
    frozensets = [aset.ids() for aset in asets]

    results = {}

    def measure():
        # frozenset baseline first so the bitset run can't warm it.
        fs_rate, _, fs_acc = _run_op_sequence(frozensets, rounds)
        bs_rate, _, bs_acc = _run_op_sequence(asets, rounds)
        # Same op stream, same result — the ratio is representation only.
        assert bs_acc.ids() == fs_acc
        results["frozenset_ops_per_sec"] = fs_rate
        results["bitset_ops_per_sec"] = bs_rate
        fs_t, fs_sink = _run_test_sequence(
            frozensets, lambda a, b: b <= a,
            lambda a, b: not a.isdisjoint(b), rounds,
        )
        bs_t, bs_sink = _run_test_sequence(
            asets, lambda a, b: a.covers(b),
            lambda a, b: a.overlaps(b), rounds,
        )
        assert fs_sink == bs_sink
        results["frozenset_tests_per_sec"] = fs_t
        results["bitset_tests_per_sec"] = bs_t

    benchmark.pedantic(measure, rounds=1, iterations=1)

    ratio = results["bitset_ops_per_sec"] / results["frozenset_ops_per_sec"]
    test_ratio = (
        results["bitset_tests_per_sec"] / results["frozenset_tests_per_sec"]
    )
    print_header(
        f"Atom bulk set ops — {name} ×{multiplier} "
        f"({len(asets)} operands, {index.num_atoms} atoms, scale={SCALE})"
    )
    print_row("repr", "ops/s", "tests/s")
    print_row("frozenset", f"{results['frozenset_ops_per_sec']:.0f}",
              f"{results['frozenset_tests_per_sec']:.0f}")
    print_row("bitset", f"{results['bitset_ops_per_sec']:.0f}",
              f"{results['bitset_tests_per_sec']:.0f}")
    print_row("ratio", f"{ratio:.2f}x", f"{test_ratio:.2f}x")

    record_trajectory(
        TRAJECTORY,
        {
            "scale": SCALE,
            "benchmark": "bulk_set_ops",
            "dataset": name,
            "pair_limit": pair_limit,
            "rule_multiplier": multiplier,
            "operands": len(asets),
            "atoms": index.num_atoms,
            **{k: round(v, 2) for k, v in results.items()},
            "bitset_over_frozenset": round(ratio, 2),
            "tests_bitset_over_frozenset": round(test_ratio, 2),
            "ratio_floor": RATIO_FLOORS[SCALE],
            "speedup_asserted": RATIO_FLOORS[SCALE] is not None,
        },
        TRAJECTORY_KEY,
    )

    floor = RATIO_FLOORS[SCALE]
    if floor is not None:
        assert ratio >= floor, (
            f"packed bitset bulk ops {ratio:.2f}x over frozensets; "
            f"acceptance floor {floor}x"
        )


def _fused_pass_rate(ds_params, predicate_index, rounds):
    """Idempotent full recompute sweeps/sec on a converged deployment."""
    name, pair_limit, multiplier = ds_params
    ds = build_dataset(
        name, pair_limit=pair_limit, seed=3, rule_multiplier=multiplier
    )
    runner = TulkunRunner(
        ds.topology, ds.ctx, ds.invariants, predicate_index=predicate_index
    )
    try:
        runner.burst_update(fresh_rules(ds))
        verifiers = [
            v
            for dev in runner.network.devices.values()
            for v in dev.verifiers.values()
            if not v.is_local_check
        ]
        nodes = sum(len(v.nodes) for v in verifiers)

        def sweep():
            for v in verifiers:
                for nid in v.nodes:
                    v._recompute(nid, v.state[nid].interest)

        sweep()  # warmup: populate split tables and kernel memos
        start = time.perf_counter()
        for _ in range(rounds):
            sweep()
        wall = time.perf_counter() - start
        return (rounds * nodes) / wall, nodes
    finally:
        runner.close()


@pytest.mark.benchmark(group="atom_ops")
def test_fused_pass_throughput(benchmark):
    name, pair_limit, multiplier, rounds = PASS_WORKLOADS[SCALE]
    results = {}

    def measure():
        for mode in ("bdd", "atoms"):
            rate, nodes = _fused_pass_rate(
                (name, pair_limit, multiplier), mode, rounds
            )
            results[mode] = rate
            results["nodes"] = nodes

    benchmark.pedantic(measure, rounds=1, iterations=1)

    speedup = results["atoms"] / results["bdd"]
    print_header(
        f"Fused LEC+count sweeps — {name} ×{multiplier} "
        f"({results['nodes']} nodes, scale={SCALE})"
    )
    print_row("mode", "node recomputes/s")
    print_row("bdd", f"{results['bdd']:.0f}")
    print_row("atoms", f"{results['atoms']:.0f}")
    print_row("speedup", f"{speedup:.2f}x")

    record_trajectory(
        TRAJECTORY,
        {
            "scale": SCALE,
            "benchmark": "fused_lec_count_pass",
            "dataset": name,
            "pair_limit": pair_limit,
            "rule_multiplier": multiplier,
            "nodes": results["nodes"],
            "bdd_recomputes_per_sec": round(results["bdd"], 2),
            "atoms_recomputes_per_sec": round(results["atoms"], 2),
            "speedup": round(speedup, 2),
            # Informational series — no floor is enforced at any scale.
            "speedup_asserted": False,
        },
        TRAJECTORY_KEY,
    )
