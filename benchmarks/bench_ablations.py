"""Ablations of Tulkun's design choices (DESIGN.md's "Design notes").

A1 — Proposition 1 minimal counting information: message bytes with the
reduction on vs. off (the off variant ships full count sets upstream).

A2 — DPVNet suffix sharing (the §4.1 state minimization): node counts for
the raw prefix-trie DAG vs. the suffix-merged one.

A3 — BDD LEC tables vs. naive per-rule handling: how many distinct packet
regions the verifiers would have to track without the minimal-LEC partition.
"""

import pytest

from benchmarks._common import dataset_for, print_header, print_row, run_tulkun_burst
from repro.automata import compile_regex, parse_regex
from repro.core import dpvnet as dpvnet_mod
from repro.core.dpvnet import build_enumeration_dpvnet
from repro.datasets import build_dataset


@pytest.mark.benchmark(group="ablation")
def test_a1_minimal_counting_information(benchmark):
    """Bytes on the wire with and without the Proposition 1 reduction."""
    import repro.core.counting as counting_mod

    outcome = {}

    def run():
        ds = dataset_for("INet2", 12, 8)
        _runner, result = run_tulkun_burst(ds)
        outcome["with"] = result.bytes_sent
        # Disable the reduction: monkeypatch reduce_countset to identity.
        original = counting_mod.reduce_countset
        import repro.core.verifier as verifier_mod

        verifier_mod.reduce_countset = lambda cs, exps: cs
        try:
            ds2 = dataset_for("INet2", 12, 8)
            _runner2, result2 = run_tulkun_burst(ds2)
            outcome["without"] = result2.bytes_sent
        finally:
            verifier_mod.reduce_countset = original
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A1: Proposition 1 minimal counting information")
    print_row("variant", "DVM bytes")
    print_row("with reduction", outcome["with"])
    print_row("without", outcome["without"])
    benchmark.extra_info["bytes_with"] = outcome["with"]
    benchmark.extra_info["bytes_without"] = outcome["without"]
    # Reduction can only shrink (or match) the traffic.
    assert outcome["with"] <= outcome["without"]


@pytest.mark.benchmark(group="ablation")
def test_a2_suffix_sharing(benchmark):
    """DPVNet sizes with and without the suffix merge."""
    outcome = {}

    def run():
        ds = build_dataset("BTNA", pair_limit=6, seed=1)
        merged_nodes = 0
        raw_nodes = 0
        original = dpvnet_mod._suffix_merge
        for invariant in ds.invariants:
            from repro.core.planner import Planner

            planner = Planner(ds.topology, ds.ctx)
            net = planner.build_dpvnet(invariant)
            merged_nodes += net.num_nodes
            try:
                dpvnet_mod._suffix_merge = lambda net_: net_
                raw = planner.build_dpvnet(invariant)
                raw_nodes += raw.num_nodes
            finally:
                dpvnet_mod._suffix_merge = original
        outcome["merged"] = merged_nodes
        outcome["raw"] = raw_nodes
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A2: DPVNet suffix sharing (§4.1 minimization)")
    print_row("variant", "total nodes")
    print_row("prefix trie (raw)", outcome["raw"])
    print_row("suffix-merged", outcome["merged"])
    ratio = outcome["raw"] / max(outcome["merged"], 1)
    print(f"\n  compression: {ratio:.2f}x")
    benchmark.extra_info["raw_nodes"] = outcome["raw"]
    benchmark.extra_info["merged_nodes"] = outcome["merged"]
    assert outcome["merged"] <= outcome["raw"]


@pytest.mark.benchmark(group="ablation")
def test_a3_lec_vs_per_rule_regions(benchmark):
    """Distinct packet regions tracked: minimal LECs vs. one per rule."""
    outcome = {}

    def run():
        ds = dataset_for("INet2", 12, 8)
        from repro.dataplane import DevicePlane

        lec_regions = 0
        rule_regions = 0
        for dev, rules in ds.rules_by_device.items():
            plane = DevicePlane(dev, ds.ctx)
            plane.install_many(
                [type(r)(r.match, r.action, r.priority) for r in rules]
            )
            lec_regions += len(plane.lec_table())
            rule_regions += plane.num_rules
        outcome["lec"] = lec_regions
        outcome["rules"] = rule_regions
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A3: minimal LEC partition vs per-rule regions")
    print_row("variant", "regions")
    print_row("per-rule", outcome["rules"])
    print_row("minimal LECs", outcome["lec"])
    print(f"\n  reduction: {outcome['rules'] / max(outcome['lec'], 1):.1f}x")
    benchmark.extra_info["lec_regions"] = outcome["lec"]
    benchmark.extra_info["rule_regions"] = outcome["rules"]
    assert outcome["lec"] < outcome["rules"]


@pytest.mark.benchmark(group="ablation")
def test_a4_divide_and_conquer(benchmark):
    """§7 one-big-switch partitioning vs flat verification: wall time of the
    planner-side work on a mid-size WAN."""
    import time

    from repro.core.library import reachability
    from repro.core.partition import partition_by_bfs, verify_partitioned
    from repro.core.planner import Planner
    from repro.dataplane import DevicePlane

    outcome = {}

    def run():
        ds = build_dataset("BTNA", pair_limit=2, seed=1)
        planes = {}
        for dev, rules in ds.rules_by_device.items():
            plane = DevicePlane(dev, ds.ctx)
            plane.install_many(rules)
            planes[dev] = plane
        src, dst = ds.pairs[0]
        space = ds.ctx.ip_prefix(ds.topology.external_prefixes[dst][0])

        start = time.perf_counter()
        flat = Planner(ds.topology, ds.ctx).verify(
            reachability(space, src, dst, max_extra_hops=2), planes
        )
        outcome["flat_s"] = time.perf_counter() - start
        assignment = partition_by_bfs(ds.topology, 3)
        start = time.perf_counter()
        split = verify_partitioned(
            ds.topology, ds.ctx, planes, space, src, dst, assignment=assignment
        )
        outcome["split_s"] = time.perf_counter() - start
        outcome["agree"] = flat.holds == split.holds
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A4: divide-and-conquer vs flat verification (BTNA)")
    print_row("variant", "wall time (s)")
    print_row("flat", f"{outcome['flat_s']:.4f}")
    print_row("partitioned (3)", f"{outcome['split_s']:.4f}")
    benchmark.extra_info["flat_s"] = outcome["flat_s"]
    benchmark.extra_info["split_s"] = outcome["split_s"]
    assert outcome["agree"]
