"""Figure 10 — dataset statistics table.

Regenerates the per-dataset (devices, links, rules) rows; our rules are
synthesized per DESIGN.md, so the absolute counts follow the scaling knobs
rather than the proprietary dumps.
"""

import pytest

from benchmarks._common import SCALE, print_header, print_row
from repro.datasets import build_dataset, dataset_names

NAMES = dataset_names() if SCALE == "large" else [
    "INet2", "B4-13", "STFD", "AT1-1", "AT1-2", "BTNA", "NTT", "FT-4", "NGDC",
]


@pytest.mark.benchmark(group="fig10")
def test_fig10_dataset_statistics(benchmark):
    rows = []

    def build_all():
        rows.clear()
        for name in NAMES:
            ds = build_dataset(name, pair_limit=8, seed=1)
            rows.append(ds.stats())
        return rows

    benchmark.pedantic(build_all, rounds=1, iterations=1)

    print_header("Figure 10: dataset statistics (scaled reproduction)")
    print_row("dataset", "kind", "devices", "links", "rules")
    for row in rows:
        print_row(row["name"], row["kind"], row["devices"], row["links"], row["rules"])
        benchmark.extra_info[row["name"]] = {
            "devices": row["devices"],
            "links": row["links"],
            "rules": row["rules"],
        }
    assert all(row["devices"] > 0 for row in rows)
