"""Transport-layer overhead of chaos fault injection.

Deploys a dataset burst plus a link-churn episode twice — once over the
reliable seed transport, once over the seq/ack retransmission layer with a
seeded :class:`FaultyChannel` — at several loss/dup/reorder regimes, and
reports the convergence-time and event-count inflation the reliability
machinery pays to mask each regime.  Verdicts must match the reliable run
exactly (byte-level parity across fault schedules is pinned by
``tests/test_chaos_convergence.py``; this benchmark sizes the cost).

Runs use ``cpu_scale=0`` so the simulated clock isolates protocol latency:
the overhead factor is pure transport behaviour (retransmission round
trips, reorder stalls), not handler compute noise.

Every run appends a record per fault regime to ``BENCH_chaos_overhead.json``
in the repo root.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks._common import SCALE, fresh_rules, print_header, print_row
from repro.datasets import build_dataset
from repro.sim import ChaosConfig, TulkunRunner

# (label, p_loss, p_dup, p_reorder)
REGIMES = [
    ("loss-10", 0.10, 0.00, 0.00),
    ("dup-20", 0.00, 0.20, 0.00),
    ("reorder-30", 0.00, 0.00, 0.30),
    ("mixed", 0.15, 0.10, 0.15),
    ("heavy", 0.40, 0.10, 0.20),
]

# (dataset, pair_limit, rule_multiplier, chaos seeds averaged per regime)
WORKLOADS = {
    "smoke": ("FT-4", 4, 1, 1),
    "small": ("FT-4", 12, 4, 3),
    "large": ("FT-4", 24, 8, 5),
}

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_chaos_overhead.json"


def _append_trajectory(record):
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            history = []
    history.append(record)
    TRAJECTORY.write_text(
        json.dumps(history, indent=2) + "\n", encoding="utf-8"
    )


def _scenario(ds, chaos=None):
    """Burst install + one fail/recover episode; returns run observables."""
    runner = TulkunRunner(
        ds.topology, ds.ctx, ds.invariants, cpu_scale=0.0, chaos=chaos
    )
    wall = time.perf_counter()
    runner.burst_update(fresh_rules(ds))
    link = next(iter(ds.topology.links()))
    runner.fail_links([(link.a, link.b)])
    runner.recover_links([(link.a, link.b)])
    wall = time.perf_counter() - wall
    network = runner.network
    flags = {
        inv.name: {
            ingress: ok
            for ingress, (ok, _v) in network.verdicts(inv.name).items()
        }
        for inv in ds.invariants
    }
    observed = {
        "sim_time": network.last_activity,
        "events": network.kernel.events_processed,
        "wall": wall,
        "flags": flags,
    }
    if chaos is not None:
        assert network.converged
        observed["transport"] = network.transport_summary()
    return observed


@pytest.mark.benchmark(group="chaos_overhead")
def test_chaos_overhead(benchmark):
    name, pair_limit, multiplier, num_seeds = WORKLOADS[SCALE]
    rows = []

    def measure():
        ds = build_dataset(
            name, pair_limit=pair_limit, seed=3, rule_multiplier=multiplier
        )
        baseline = _scenario(ds)
        for label, p_loss, p_dup, p_reorder in REGIMES:
            samples = []
            for seed in range(num_seeds):
                chaos = ChaosConfig(
                    seed=seed, p_loss=p_loss, p_dup=p_dup, p_reorder=p_reorder
                )
                observed = _scenario(ds, chaos=chaos)
                assert observed["flags"] == baseline["flags"], (
                    f"verdict drift under {label} seed={seed}"
                )
                samples.append(observed)
            mean_time = sum(s["sim_time"] for s in samples) / len(samples)
            mean_events = sum(s["events"] for s in samples) / len(samples)
            rows.append(
                {
                    "regime": label,
                    "p_loss": p_loss,
                    "p_dup": p_dup,
                    "p_reorder": p_reorder,
                    "sim_time": mean_time,
                    "time_overhead": mean_time / baseline["sim_time"],
                    "events": mean_events,
                    "event_overhead": mean_events / baseline["events"],
                    "retransmits": sum(
                        s["transport"]["retransmits"] for s in samples
                    ) / len(samples),
                }
            )
        rows.insert(
            0,
            {
                "regime": "reliable",
                "p_loss": 0.0, "p_dup": 0.0, "p_reorder": 0.0,
                "sim_time": baseline["sim_time"],
                "time_overhead": 1.0,
                "events": baseline["events"],
                "event_overhead": 1.0,
                "retransmits": 0,
            },
        )

    benchmark.pedantic(measure, rounds=1, iterations=1)

    print_header(
        f"Chaos transport overhead — {name} ×{multiplier} "
        f"({num_seeds} seeds/regime, scale={SCALE})"
    )
    print_row("regime", "sim time", "x reliable", "events", "retransmits")
    for row in rows:
        print_row(
            row["regime"],
            f"{row['sim_time'] * 1e3:.3f} ms",
            f"{row['time_overhead']:.2f}x",
            f"{row['events']:.0f}",
            f"{row['retransmits']:.0f}",
        )

    _append_trajectory(
        {
            "scale": SCALE,
            "dataset": name,
            "pair_limit": pair_limit,
            "rule_multiplier": multiplier,
            "seeds_per_regime": num_seeds,
            "regimes": rows,
        }
    )
