"""Figures 11b and 11c — incremental verification.

Per dataset: apply random single-rule updates one at a time (change +
restore, both measured) and report

* 11b — the percentage of updates verified in under 10 ms;
* 11c — the 80% quantile of per-update verification time,

for Tulkun and every centralized tool.  The paper's shape: Tulkun verifies
the large majority under 10 ms because only affected devices recount and
only changed results travel; centralized tools pay the device→verifier RTT
before any compute starts.
"""

import pytest

from benchmarks._common import (
    INCREMENTAL_DATASETS,
    NUM_UPDATES,
    SCALE,
    dataset_for,
    fresh_planes,
    print_header,
    print_row,
    run_tulkun_burst,
)
from repro.baselines import ALL_BASELINES
from repro.dataplane import Action, Rule
from repro.sim import apply_intents, percentile, random_update_intents


def _baseline_incremental(tool, planes, intents):
    times = []
    for intent in intents:
        plane = planes[intent.dev]
        if not plane.rules:
            continue
        victim = plane.rules[intent.rule_index % len(plane.rules)]
        if intent.neutral:
            clone = Rule(victim.match, victim.action, victim.priority)
            report = tool.incremental_verify(
                intent.dev, install=clone, remove_rule_id=victim.rule_id
            )
            times.append(report.verification_time)
            continue
        action = (
            Action.forward_all(intent.new_next_hops)
            if intent.new_next_hops
            else Action.drop()
        )
        if action == victim.action:
            continue
        changed = Rule(victim.match, action, victim.priority)
        report = tool.incremental_verify(
            intent.dev, install=changed, remove_rule_id=victim.rule_id
        )
        times.append(report.verification_time)
        restored = Rule(victim.match, victim.action, victim.priority)
        report = tool.incremental_verify(
            intent.dev, install=restored, remove_rule_id=changed.rule_id
        )
        times.append(report.verification_time)
    return times


@pytest.mark.benchmark(group="fig11bc")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    INCREMENTAL_DATASETS[SCALE],
    ids=[entry[0] for entry in INCREMENTAL_DATASETS[SCALE]],
)
def test_fig11bc_incremental(benchmark, name, pair_limit, multiplier):
    updates = NUM_UPDATES[SCALE]
    results = {}

    def tulkun_run():
        ds = dataset_for(name, pair_limit, multiplier)
        runner, _burst = run_tulkun_burst(ds)
        planes = {
            d: runner.network.devices[d].plane for d in ds.topology.devices
        }
        intents = random_update_intents(ds.topology, planes, updates, seed=5)
        outcome = apply_intents(runner, intents)
        results["Tulkun"] = outcome.times
        results["_intents"] = intents
        return outcome

    benchmark.pedantic(tulkun_run, rounds=1, iterations=1)
    intents = results.pop("_intents")

    for tool_cls in ALL_BASELINES:
        ds = dataset_for(name, pair_limit, multiplier)
        tool = tool_cls(ds.topology, ds.ctx, ds.queries)
        planes = fresh_planes(ds)
        tool.burst_verify(planes)
        results[tool_cls.name] = _baseline_incremental(tool, planes, intents)

    print_header(
        f"Figures 11b/11c [{name}]: incremental verification "
        f"({updates} updates + restores)"
    )
    print_row("tool", "<10ms (11b)", "80% qtile ms (11c)")
    tulkun_q80 = percentile(results["Tulkun"], 0.8)
    for tool_name, times in results.items():
        if not times:
            continue
        below = sum(1 for t in times if t < 0.010) / len(times)
        q80 = percentile(times, 0.8)
        speedup = (
            "" if tool_name == "Tulkun"
            else f"  ({q80 / max(tulkun_q80, 1e-9):.1f}x Tulkun)"
        )
        print_row(
            tool_name, f"{below * 100:.1f}%", f"{q80 * 1e3:.3f}{speedup}"
        )
        benchmark.extra_info[f"{tool_name}_q80_ms"] = q80 * 1e3
        benchmark.extra_info[f"{tool_name}_below10ms"] = below
    assert results["Tulkun"]
