"""Figure 11a — burst-update verification time and acceleration ratios.

For every dataset: Tulkun's simulated verification time (rule install at
t=0 → quiescence) next to each centralized tool's (collection + compute),
and the tool/Tulkun acceleration ratio.  The paper's shape: Tulkun's
advantage grows with device count (parallelism) and rule count (the EC
bottleneck), peaking on DC fabrics; small WANs are latency-bound and close.
"""

import pytest

from benchmarks._common import (
    BURST_DATASETS,
    SCALE,
    dataset_for,
    fresh_planes,
    print_header,
    print_row,
    run_tulkun_burst,
)
from repro.baselines import ALL_BASELINES


@pytest.mark.benchmark(group="fig11a")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    BURST_DATASETS[SCALE],
    ids=[entry[0] for entry in BURST_DATASETS[SCALE]],
)
def test_fig11a_burst_update(benchmark, name, pair_limit, multiplier):
    tulkun_time = {}

    def tulkun_run():
        ds = dataset_for(name, pair_limit, multiplier)
        _runner, result = run_tulkun_burst(ds)
        tulkun_time["sim"] = result.verification_time
        tulkun_time["holds"] = all(result.holds.values())
        tulkun_time["messages"] = result.messages
        return result

    benchmark.pedantic(tulkun_run, rounds=1, iterations=1)
    assert tulkun_time["holds"]

    print_header(f"Figure 11a [{name}]: burst-update verification time")
    print_row("tool", "sim time (ms)", "vs Tulkun")
    print_row("Tulkun", f"{tulkun_time['sim'] * 1e3:.2f}", "1.00x")
    benchmark.extra_info["tulkun_ms"] = tulkun_time["sim"] * 1e3

    for tool_cls in ALL_BASELINES:
        ds = dataset_for(name, pair_limit, multiplier)
        tool = tool_cls(ds.topology, ds.ctx, ds.queries)
        report = tool.burst_verify(fresh_planes(ds))
        ratio = report.verification_time / max(tulkun_time["sim"], 1e-9)
        print_row(
            tool.name,
            f"{report.verification_time * 1e3:.2f}",
            f"{ratio:.2f}x",
        )
        benchmark.extra_info[f"{tool.name}_ms"] = report.verification_time * 1e3
        assert report.holds
