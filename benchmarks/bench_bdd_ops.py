"""BDD engine throughput — specialized apply kernels vs the legacy ite path.

Runs an identical FIB-shaped boolean workload (LEC-style first-match loop
over random prefix cubes, then pairwise and/or/diff mixing and a complement
pass) on two engines:

* **legacy** — the seed implementation's strategy: one recursive ``ite``
  with a single ternary cache, every binary operation expressed through it
  (``diff`` and ``xor`` first materialize a ``NOT`` operand).
* **kernel** — the current engine: dedicated iterative apply kernels with
  per-op commutativity-normalized caches and a linear complement memo.

Both engines are constructed fresh (cold caches), run the same operation
sequence, and are cross-checked by model counts, so the speedup is
apples-to-apples.  Every run appends a record with both throughput baselines
to ``BENCH_bdd_ops.json`` in the repo root.

Scales: ``REPRO_BENCH_SCALE=smoke`` is the CI bitrot check (tiny workload,
no speedup assertion — too small to time meaningfully); ``small`` (default)
and ``large`` assert the ≥1.5× acceptance bar.
"""

import json
import time
from pathlib import Path
from random import Random

import pytest

from benchmarks._common import SCALE, print_header, print_row
from repro.bdd.manager import FALSE, TRUE, BddManager

SPEEDUP_FLOOR = 1.5

# (num_vars, num_rules, num_buckets, min_fixed_bits, max_fixed_bits)
SIZES = {
    "smoke": (16, 40, 4, 4, 10),
    "small": (32, 400, 12, 8, 24),
    "large": (32, 1600, 16, 8, 28),
}

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_bdd_ops.json"


def _append_trajectory(record):
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            history = []
    history.append(record)
    TRAJECTORY.write_text(
        json.dumps(history, indent=2) + "\n", encoding="utf-8"
    )


class LegacyIteBddManager(BddManager):
    """The pre-specialization engine, for before/after comparison.

    Reproduces the seed implementation's hot path exactly: one recursive
    ``ite`` with a ternary cache, and every ``apply_*`` routed through it.
    It must carry its own ``ite`` copy — the inherited one now routes
    terminal-operand calls back to the specialized kernels, which would
    make the subclass benchmark the new engine against itself.
    """

    def __init__(self, num_vars: int) -> None:
        super().__init__(num_vars)
        self._legacy_cache = {}

    def _legacy_ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._legacy_cache.get(key)
        if cached is not None:
            return cached
        var = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        low = self._legacy_ite(f0, g0, h0)
        high = self._legacy_ite(f1, g1, h1)
        result = self._mk(var, low, high)
        self._legacy_cache[key] = result
        return result

    def apply_and(self, f: int, g: int) -> int:
        return self._legacy_ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self._legacy_ite(f, TRUE, g)

    def apply_not(self, f: int) -> int:
        return self._legacy_ite(f, FALSE, TRUE)

    def apply_diff(self, f: int, g: int) -> int:
        return self._legacy_ite(f, self.apply_not(g), FALSE)

    def apply_xor(self, f: int, g: int) -> int:
        return self._legacy_ite(f, self.apply_not(g), g)


def make_rules(rng, num_vars, num_rules, min_bits, max_bits):
    """FIB-shaped matches: random-length prefix cubes over the variable
    order, like destination prefixes of varying length."""
    rules = []
    for _ in range(num_rules):
        nbits = rng.randint(min_bits, max_bits)
        rules.append({v: bool(rng.getrandbits(1)) for v in range(nbits)})
    return rules


def build_matches(mgr, rules):
    """Instantiate the rule cubes inside ``mgr`` (untimed setup: node
    construction is identical code in both engines)."""
    return [mgr.cube(literals) for literals in rules]


def run_workload(mgr, matches, num_buckets):
    """The mixed and/or/diff workload; returns (ops executed, buckets)."""
    ops = 0
    # Phase 1: LEC-style first-match loop — intersect with the uncovered
    # space, subtract, accumulate per-action buckets (exactly the
    # compute_lec_table inner loop).
    remaining = TRUE
    buckets = [FALSE] * num_buckets
    for i, match in enumerate(matches):
        effective = mgr.apply_and(match, remaining)
        ops += 1
        if effective == FALSE:
            continue
        remaining = mgr.apply_diff(remaining, effective)
        b = i % num_buckets
        buckets[b] = mgr.apply_or(buckets[b], effective)
        ops += 2
    # Phase 2: pairwise region algebra — the CIB intersection / withdrawn-
    # predicate pattern of the DVM handlers.  Commutative ops run in both
    # operand orders, as they do in a shared engine when the two endpoints
    # of a link each intersect the same pair of predicates from their own
    # side; the normalized caches answer the second order in O(1).  The
    # diffs subtract the freshly-built overlap piece (the withdrawn-
    # predicate shape of ``action_of``/``handle_lec_deltas``): the
    # subtrahend is new every pair, so an engine that reaches NOT-based
    # ``ite`` rebuilds a complement each time while the dedicated diff
    # kernel never materializes one.
    unions = []
    for i in range(num_buckets):
        for j in range(i + 1, num_buckets):
            piece = mgr.apply_and(buckets[i], buckets[j])
            mgr.apply_and(buckets[j], buckets[i])
            union = mgr.apply_or(buckets[i], buckets[j])
            mgr.apply_or(buckets[j], buckets[i])
            unions.append(union)
            mgr.apply_diff(union, piece)
            mgr.apply_diff(buckets[i], piece)
            mgr.apply_diff(buckets[j], piece)
            mgr.apply_xor(buckets[i], buckets[j])
            mgr.apply_xor(buckets[j], buckets[i])
            ops += 9
    # Phase 3: complement round-trips (negated packet-space constructors
    # that are later re-negated).  The involution memo answers the second
    # complement in O(1); a NOT-via-ite engine walks the full DAG twice.
    for union in unions:
        negated = mgr.apply_not(union)
        mgr.apply_not(negated)
        ops += 2
    return ops, buckets


@pytest.mark.benchmark(group="bdd_ops")
def test_bdd_ops_kernels_vs_legacy(benchmark):
    num_vars, num_rules, num_buckets, min_bits, max_bits = SIZES[SCALE]
    rules = make_rules(Random(7), num_vars, num_rules, min_bits, max_bits)

    def once(engine_cls):
        """One cold-cache run; returns (elapsed, ops, counts, mgr)."""
        mgr = engine_cls(num_vars)
        matches = build_matches(mgr, rules)
        start = time.perf_counter()
        ops, buckets = run_workload(mgr, matches, num_buckets)
        elapsed = time.perf_counter() - start
        # Cross-check outside the timed window (count() is identical code
        # in both engines and would only dilute the kernel comparison).
        counts = tuple(mgr.count(b) for b in buckets)
        return elapsed, ops, counts, mgr

    def measure(repeats=4):
        # Best-of-N with a fresh manager per repeat: each run stays
        # cold-cache, the minimum strips scheduler noise.  The engines
        # alternate so slow machine drift penalizes both equally.
        legacy_runs = []
        kernel_runs = []
        for _ in range(repeats):
            legacy_runs.append(once(LegacyIteBddManager))
            kernel_runs.append(once(BddManager))
        legacy_time, legacy_ops, legacy_sum, legacy = min(
            legacy_runs, key=lambda run: run[0]
        )
        kernel_time, kernel_ops, kernel_sum, kernel = min(
            kernel_runs, key=lambda run: run[0]
        )

        return {
            "legacy_time_s": legacy_time,
            "kernel_time_s": kernel_time,
            "legacy_ops": legacy_ops,
            "kernel_ops": kernel_ops,
            "checksums_equal": legacy_sum == kernel_sum,
            "legacy_nodes": legacy.node_count(),
            "kernel_nodes": kernel.node_count(),
            "kernel_cache_hit_rate": kernel.stats.hit_rate(),
        }

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert stats["checksums_equal"], "engines disagree on model counts"
    assert stats["legacy_ops"] == stats["kernel_ops"]

    legacy_tput = stats["legacy_ops"] / stats["legacy_time_s"]
    kernel_tput = stats["kernel_ops"] / stats["kernel_time_s"]
    speedup = kernel_tput / legacy_tput

    print_header(
        f"BDD op throughput [scale={SCALE}, {num_vars} vars, "
        f"{num_rules} rules, {stats['kernel_ops']} ops]"
    )
    print_row("engine", "time (ms)", "ops/s", "nodes", "speedup")
    print_row(
        "legacy ite",
        f"{stats['legacy_time_s'] * 1e3:.1f}",
        f"{legacy_tput:,.0f}",
        stats["legacy_nodes"],
        "1.00x",
    )
    print_row(
        "kernels",
        f"{stats['kernel_time_s'] * 1e3:.1f}",
        f"{kernel_tput:,.0f}",
        stats["kernel_nodes"],
        f"{speedup:.2f}x",
    )

    record = {
        "bench": "bdd_ops",
        "scale": SCALE,
        "num_vars": num_vars,
        "num_rules": num_rules,
        "num_buckets": num_buckets,
        "workload_ops": stats["kernel_ops"],
        "legacy_ops_per_s": round(legacy_tput, 1),
        "kernel_ops_per_s": round(kernel_tput, 1),
        "legacy_time_s": round(stats["legacy_time_s"], 4),
        "kernel_time_s": round(stats["kernel_time_s"], 4),
        "speedup": round(speedup, 3),
        "kernel_cache_hit_rate": round(stats["kernel_cache_hit_rate"], 4),
    }
    _append_trajectory(record)
    benchmark.extra_info.update(record)

    if SCALE != "smoke":
        assert speedup >= SPEEDUP_FLOOR, (
            f"kernel speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x bar "
            f"(legacy {legacy_tput:,.0f} ops/s, kernel {kernel_tput:,.0f} ops/s)"
        )
