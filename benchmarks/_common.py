"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index) and prints the same rows/series the paper
reports.  Absolute numbers differ — the substrate is a Python simulator, not
the authors' switches — but the comparisons (who wins, by roughly what
factor) are the reproduction target; EXPERIMENTS.md records both.

Scaling: set ``REPRO_BENCH_SCALE=large`` for bigger datasets / more samples
(several minutes), default ``small`` keeps the whole suite in a few minutes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.baselines import ALL_BASELINES
from repro.dataplane import DevicePlane, Rule
from repro.datasets import BuiltDataset, build_dataset
from repro.sim import TulkunRunner

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def host_cores() -> Dict[str, int]:
    """Both core figures a speedup claim needs: the machine's core count
    and the (possibly smaller) set this process may actually run on —
    containers and CI runners routinely pin affinity below ``cpu_count``."""
    cpu_count = os.cpu_count() or 1
    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        affinity = cpu_count
    return {"cpu_count": cpu_count, "affinity_cores": affinity}


def record_trajectory(path: Path, record: dict, key_fields: Sequence[str]) -> None:
    """Append ``record`` to the JSON trajectory at ``path``, replacing any
    existing entry with the same key in place.

    Keying on the workload parameters (scale, dataset, sizes) keeps the
    trajectory one-row-per-configuration: re-running a benchmark updates
    its row instead of stacking near-identical entries."""
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            history = []
    key = tuple(record.get(field) for field in key_fields)
    for i, entry in enumerate(history):
        if tuple(entry.get(field) for field in key_fields) == key:
            history[i] = record
            break
    else:
        history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")

# Datasets exercised per figure at each scale: (name, pair_limit, multiplier)
BURST_DATASETS = {
    "small": [
        ("INet2", 12, 8),
        ("B4-13", 12, 4),
        ("STFD", 12, 4),
        ("AT1-1", 10, 1),
        ("AT1-2", 10, 4),
        ("FT-4", 16, 4),
        ("NGDC", 16, 2),
    ],
    "large": [
        ("INet2", None, 16),
        ("B4-13", 24, 8),
        ("STFD", 24, 8),
        ("AT1-1", 20, 1),
        ("AT1-2", 20, 4),
        ("B4-18", 20, 4),
        ("BTNA", 16, 2),
        ("NTT", 16, 2),
        ("AT2-1", 12, 1),
        ("AT2-2", 12, 8),
        ("OTEG", 10, 1),
        ("FT-4", 32, 8),
        ("FT-8", 24, 2),
        ("NGDC", 24, 4),
    ],
}

INCREMENTAL_DATASETS = {
    "small": [("INet2", 10, 8), ("B4-13", 10, 4), ("STFD", 10, 4)],
    "large": [
        ("INet2", 16, 16), ("B4-13", 16, 8), ("STFD", 16, 8),
        ("AT1-1", 12, 2), ("NTT", 10, 2), ("FT-4", 16, 4),
    ],
}

NUM_UPDATES = {"smoke": 4, "small": 8, "large": 40}
NUM_SCENES = {"smoke": 2, "small": 6, "large": 50}


def fresh_rules(ds: BuiltDataset) -> Dict[str, List[Rule]]:
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in rules]
        for dev, rules in ds.rules_by_device.items()
    }


def fresh_planes(ds: BuiltDataset) -> Dict[str, DevicePlane]:
    planes: Dict[str, DevicePlane] = {}
    for dev, rules in fresh_rules(ds).items():
        plane = DevicePlane(dev, ds.ctx)
        plane.install_many(rules)
        planes[dev] = plane
    return planes


def dataset_for(name: str, pair_limit, multiplier: int, seed: int = 1) -> BuiltDataset:
    """A fresh dataset build (fresh BDD context — keeps tool timings fair:
    no tool inherits another's warm operation caches)."""
    return build_dataset(
        name, pair_limit=pair_limit, seed=seed, rule_multiplier=multiplier
    )


def run_tulkun_burst(ds: BuiltDataset, cpu_scale: float = 1.0):
    runner = TulkunRunner(ds.topology, ds.ctx, ds.invariants, cpu_scale=cpu_scale)
    result = runner.burst_update(fresh_rules(ds))
    return runner, result


def run_baseline_burst(tool_cls, name: str, pair_limit, multiplier: int):
    """Burst-verify with a freshly built dataset so BDD caches start cold."""
    ds = dataset_for(name, pair_limit, multiplier)
    tool = tool_cls(ds.topology, ds.ctx, ds.queries)
    report = tool.burst_verify(fresh_planes(ds))
    return ds, tool, report


def print_header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def print_row(*cells, widths=(12, 14, 14, 14, 10)) -> None:
    parts = []
    for cell, width in zip(cells, list(widths) + [12] * 10):
        parts.append(f"{cell!s:<{width}}")
    print("  ".join(parts))
