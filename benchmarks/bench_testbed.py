"""§9.2 testbed experiments (E2/E3): the 9-device INet2 WAN.

Experiment 1 — burst update: all rules installed at once; the paper reports
Tulkun at 0.99 s, 2.09× faster than the best centralized tool.

Experiment 2 — incremental: random rule updates applied and verified one by
one; the paper reports ≤5.42 ms at the 80% quantile, a 4.90× speedup.

Our INet2 rendition uses synthesized rules (multiplier-scaled); the
incremental half reproduces the paper's factors almost exactly, the burst
half is latency-bound at this scale (see EXPERIMENTS.md).
"""

import pytest

from benchmarks._common import (
    NUM_UPDATES,
    SCALE,
    dataset_for,
    fresh_planes,
    print_header,
    print_row,
    run_tulkun_burst,
)
from repro.baselines import ALL_BASELINES
from repro.dataplane import Action, Rule
from repro.sim import apply_intents, percentile, random_update_intents

MULTIPLIER = {"small": 8, "large": 32}


@pytest.mark.benchmark(group="testbed")
def test_testbed_experiment1_burst(benchmark):
    outcome = {}

    def run():
        ds = dataset_for("INet2", None, MULTIPLIER[SCALE])
        runner, result = run_tulkun_burst(ds)
        outcome["tulkun"] = result.verification_time
        outcome["holds"] = all(result.holds.values())
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome["holds"]

    best = None
    for tool_cls in ALL_BASELINES:
        ds = dataset_for("INet2", None, MULTIPLIER[SCALE])
        tool = tool_cls(ds.topology, ds.ctx, ds.queries)
        report = tool.burst_verify(fresh_planes(ds))
        assert report.holds
        if best is None or report.verification_time < best[1]:
            best = (tool.name, report.verification_time)

    print_header("§9.2 Experiment 1: burst update on INet2 (all pairs)")
    print_row("tool", "sim time (ms)")
    print_row("Tulkun", f"{outcome['tulkun'] * 1e3:.2f}")
    print_row(f"best centralized ({best[0]})", f"{best[1] * 1e3:.2f}")
    ratio = best[1] / outcome["tulkun"]
    print(f"\n  acceleration over best centralized: {ratio:.2f}x "
          "(paper: 2.09x)")
    benchmark.extra_info["tulkun_ms"] = outcome["tulkun"] * 1e3
    benchmark.extra_info["best_centralized_ms"] = best[1] * 1e3


@pytest.mark.benchmark(group="testbed")
def test_testbed_experiment2_incremental(benchmark):
    updates = NUM_UPDATES[SCALE]
    outcome = {}

    def run():
        ds = dataset_for("INet2", None, MULTIPLIER[SCALE])
        runner, _burst = run_tulkun_burst(ds)
        planes = {
            d: runner.network.devices[d].plane for d in ds.topology.devices
        }
        intents = random_update_intents(ds.topology, planes, updates, seed=17)
        result = apply_intents(runner, intents)
        outcome["times"] = result.times
        outcome["intents"] = intents
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    tulkun_q80 = percentile(outcome["times"], 0.8)

    best = None
    for tool_cls in ALL_BASELINES:
        ds = dataset_for("INet2", None, MULTIPLIER[SCALE])
        tool = tool_cls(ds.topology, ds.ctx, ds.queries)
        planes = fresh_planes(ds)
        tool.burst_verify(planes)
        times = []
        for intent in outcome["intents"]:
            plane = planes[intent.dev]
            if not plane.rules:
                continue
            victim = plane.rules[intent.rule_index % len(plane.rules)]
            if intent.neutral:
                clone = Rule(victim.match, victim.action, victim.priority)
                times.append(
                    tool.incremental_verify(
                        intent.dev, install=clone,
                        remove_rule_id=victim.rule_id,
                    ).verification_time
                )
                continue
            action = (
                Action.forward_all(intent.new_next_hops)
                if intent.new_next_hops else Action.drop()
            )
            if action == victim.action:
                continue
            changed = Rule(victim.match, action, victim.priority)
            times.append(
                tool.incremental_verify(
                    intent.dev, install=changed, remove_rule_id=victim.rule_id
                ).verification_time
            )
            restored = Rule(victim.match, victim.action, victim.priority)
            times.append(
                tool.incremental_verify(
                    intent.dev, install=restored, remove_rule_id=changed.rule_id
                ).verification_time
            )
        if times:
            q80 = percentile(times, 0.8)
            if best is None or q80 < best[1]:
                best = (tool.name, q80)

    print_header("§9.2 Experiment 2: incremental updates on INet2")
    print_row("tool", "80% qtile (ms)")
    print_row("Tulkun", f"{tulkun_q80 * 1e3:.3f}")
    print_row(f"best centralized ({best[0]})", f"{best[1] * 1e3:.3f}")
    print(f"\n  acceleration over best centralized: "
          f"{best[1] / max(tulkun_q80, 1e-9):.2f}x (paper: 4.90x)")
    benchmark.extra_info["tulkun_q80_ms"] = tulkun_q80 * 1e3
    benchmark.extra_info["best_centralized_q80_ms"] = best[1] * 1e3
