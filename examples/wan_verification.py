#!/usr/bin/env python3
"""WAN verification: Tulkun vs. the centralized tools on Internet2.

The §9.2 testbed experiment in miniature: synthesize the INet2 WAN with
shortest-path ECMP FIBs, verify all-pair (≤ shortest+2) loop-free
reachability, then replay random incremental updates — comparing Tulkun's
distributed verification against all five centralized baselines.

Run:  python examples/wan_verification.py
"""

from repro.baselines import ALL_BASELINES
from repro.dataplane import DevicePlane, Rule
from repro.datasets import build_dataset
from repro.sim import TulkunRunner, apply_intents, random_update_intents


def fresh_rules(ds):
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in rules]
        for dev, rules in ds.rules_by_device.items()
    }


def fresh_planes(ds):
    planes = {}
    for dev, rules in fresh_rules(ds).items():
        plane = DevicePlane(dev, ds.ctx)
        plane.install_many(rules)
        planes[dev] = plane
    return planes


def main():
    ds = build_dataset("INet2", pair_limit=12, seed=1)
    stats = ds.stats()
    print(f"dataset: {stats['name']} — {stats['devices']} devices, "
          f"{stats['links']} links, {stats['rules']} rules, "
          f"{stats['pairs']} (src, dst) pairs\n")

    # ------------------------------------------------------------------
    # Burst update (§9.3.2): install every rule at t=0.
    # ------------------------------------------------------------------
    print("== burst update ==")
    runner = TulkunRunner(ds.topology, ds.ctx, ds.invariants)
    burst = runner.burst_update(fresh_rules(ds))
    print(f"Tulkun      {burst.verification_time * 1e3:9.2f} ms  "
          f"(holds={all(burst.holds.values())}, {burst.messages} messages)")
    for tool_cls in ALL_BASELINES:
        tool = tool_cls(ds.topology, ds.ctx, ds.queries)
        report = tool.burst_verify(fresh_planes(ds))
        ratio = report.verification_time / burst.verification_time
        print(f"{tool.name:<11} {report.verification_time * 1e3:9.2f} ms  "
              f"(holds={report.holds}, {ratio:.2f}x Tulkun)")

    # ------------------------------------------------------------------
    # Incremental updates (§9.3.3).
    # ------------------------------------------------------------------
    print("\n== incremental updates (20 random rule changes) ==")
    planes = {d: runner.network.devices[d].plane for d in ds.topology.devices}
    intents = random_update_intents(ds.topology, planes, 10, seed=4)
    tulkun_inc = apply_intents(runner, intents)
    print(f"Tulkun      80% quantile {tulkun_inc.quantile(0.8) * 1e3:8.3f} ms, "
          f"<10ms: {tulkun_inc.fraction_below(0.010) * 100:5.1f}%")

    for tool_cls in ALL_BASELINES:
        tool = tool_cls(ds.topology, ds.ctx, ds.queries)
        tool_planes = fresh_planes(ds)
        tool.burst_verify(tool_planes)
        times = []
        for intent in intents:
            plane = tool_planes[intent.dev]
            if not plane.rules:
                continue
            victim = plane.rules[intent.rule_index % len(plane.rules)]
            from repro.dataplane import Action

            if intent.neutral:
                clone = Rule(victim.match, victim.action, victim.priority)
                report = tool.incremental_verify(
                    intent.dev, install=clone, remove_rule_id=victim.rule_id
                )
                times.append(report.verification_time)
                continue
            action = (
                Action.forward_all(intent.new_next_hops)
                if intent.new_next_hops else Action.drop()
            )
            if action == victim.action:
                continue
            changed = Rule(victim.match, action, victim.priority)
            report = tool.incremental_verify(
                intent.dev, install=changed, remove_rule_id=victim.rule_id
            )
            times.append(report.verification_time)
            restored = Rule(victim.match, victim.action, victim.priority)
            report = tool.incremental_verify(
                intent.dev, install=restored, remove_rule_id=changed.rule_id
            )
            times.append(report.verification_time)
        if times:
            from repro.sim import percentile

            q80 = percentile(times, 0.8)
            below = sum(1 for t in times if t < 0.010) / len(times)
            print(f"{tool.name:<11} 80% quantile {q80 * 1e3:8.3f} ms, "
                  f"<10ms: {below * 100:5.1f}%  "
                  f"({q80 / max(tulkun_inc.quantile(0.8), 1e-9):.1f}x Tulkun)")


if __name__ == "__main__":
    main()
