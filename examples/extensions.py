#!/usr/bin/env python3
"""§7 extensions: cut-device analysis, divide-and-conquer, multi-path
invariants.

1. **Gate devices** — on the Figure 2a network, device A is a cut between S
   and D: every valid path passes through it, so (per §7) its counting
   result alone settles ``exist`` invariants and its minimal counting
   information toward upstream is effectively empty.
2. **One-big-switch divide-and-conquer** — a 24-node WAN is split into
   partitions, each abstracted to one big switch; reachability verifies via
   nested intra-partition checks plus one abstract-network verification.
3. **Multi-path invariants** — route symmetry and node-disjointness, by
   collecting the actual used paths of two packet spaces and comparing.

Run:  python examples/extensions.py
"""

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.core import Planner
from repro.core.analysis import gate_devices, path_count
from repro.core.library import reachability
from repro.core.multipath import used_paths, verify_disjointness
from repro.core.invariant import PathExpr
from repro.core.partition import partition_by_bfs, verify_partitioned
from repro.dataplane import Action, DevicePlane, Rule
from repro.datasets import generate_fibs
from repro.topology import Topology, fig2a_example, random_wan


def demo_gates():
    ctx = PacketSpaceContext()
    topo = fig2a_example()
    inv = reachability(ctx.ip_prefix("10.0.0.0/23"), "S", "D")
    net = Planner(topo, ctx).build_dpvnet(inv)
    print("== gate devices (cut-based local verification, §7) ==")
    print(f"valid S→D paths in the DPVNet: {path_count(net)}")
    print(f"devices on EVERY valid path: {gate_devices(net)}")
    print("→ device A could verify the invariant locally, no upstream "
          "propagation needed\n")


def demo_partitioned():
    ctx = PacketSpaceContext(HeaderLayout.dst_only())
    topo = random_wan(24, 20, seed=12, name="wan24")
    rules = generate_fibs(topo, ctx)
    planes = {}
    for dev, dev_rules in rules.items():
        plane = DevicePlane(dev, ctx)
        plane.install_many(dev_rules)
        planes[dev] = plane
    src, dst = topo.devices[0], topo.devices[-1]
    prefix = topo.external_prefixes[dst][0]
    space = ctx.ip_prefix(prefix)

    assignment = partition_by_bfs(topo, 3)
    sizes = {}
    for part in assignment.values():
        sizes[part] = sizes.get(part, 0) + 1
    print("== divide-and-conquer (one-big-switch, §7) ==")
    print(f"24-device WAN split into partitions: {sizes}")
    result = verify_partitioned(
        topo, ctx, planes, space, src, dst, assignment=assignment
    )
    print(f"partitioned reachability {src} → {dst}: {result.summary()}")
    flat = Planner(topo, ctx).verify(
        reachability(space, src, dst, max_extra_hops=2), planes
    )
    print(f"flat verification agrees: {flat.holds == result.holds}\n")


def demo_multipath():
    ctx = PacketSpaceContext()
    topo = Topology("diamond")
    topo.add_link("S", "A")
    topo.add_link("S", "B")
    topo.add_link("A", "D")
    topo.add_link("B", "D")
    gold = ctx.ip_prefix("10.1.0.0/24")    # premium traffic via A
    bulk = ctx.ip_prefix("10.2.0.0/24")    # bulk traffic via B
    planes = {n: DevicePlane(n, ctx) for n in topo.devices}
    planes["S"].install_many(
        [
            Rule(gold, Action.forward_all(["A"]), 10),
            Rule(bulk, Action.forward_all(["B"]), 10),
        ]
    )
    planes["A"].install_many([Rule(gold | bulk, Action.forward_all(["D"]), 10)])
    planes["B"].install_many([Rule(gold | bulk, Action.forward_all(["D"]), 10)])
    planes["D"].install_many([Rule(gold | bulk, Action.deliver(), 10)])

    print("== multi-path invariants (§7) ==")
    planner = Planner(topo, ctx)
    expr = PathExpr.parse("S .* D", simple_only=True)
    print(f"gold paths: {sorted(used_paths(planner, planes, gold, 'S', expr))}")
    print(f"bulk paths: {sorted(used_paths(planner, planes, bulk, 'S', expr))}")
    result = verify_disjointness(planner, planes, gold, bulk, "S", "D")
    print(f"node-disjointness (1+1 isolation): {result.summary()}")

    # Misconfiguration: bulk rerouted onto the premium path.
    victim = next(r for r in planes["S"].rules if r.match == bulk)
    planes["S"].replace_rule(
        victim.rule_id, Rule(bulk, Action.forward_all(["A"]), 10)
    )
    result = verify_disjointness(planner, planes, gold, bulk, "S", "D")
    print(f"after the reroute: {result.summary()}")
    for violation in result.violations:
        print(f"  {violation.message}")


if __name__ == "__main__":
    demo_gates()
    demo_partitioned()
    demo_multipath()
