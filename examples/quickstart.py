#!/usr/bin/env python3
"""Quickstart: the paper's §2 walkthrough, end to end.

Builds the Figure 2a network and data plane, specifies the Figure 2b
invariant (packets to 10.0.0.0/23 entering at S must reach D via a simple
path through W), verifies it three ways — trace enumeration, centralized
Algorithm 1, and the full distributed simulation — and then replays the
§2.2.3 incremental update that fixes the violation.

Run:  python examples/quickstart.py
"""

from repro.bdd import PacketSpaceContext
from repro.bdd.fields import ip_to_int
from repro.core import Planner
from repro.core.language import parse_invariants
from repro.dataplane import (
    Action,
    DevicePlane,
    Rule,
    enumerate_universes,
)
from repro.sim import TulkunRunner
from repro.topology import fig2a_example


def build_data_plane(ctx):
    """The Figure 2a forwarding state, exactly as drawn in the paper."""
    p1 = ctx.ip_prefix("10.0.0.0/23")
    p2 = ctx.ip_prefix("10.0.0.0/24")
    p3 = ctx.ip_prefix("10.0.1.0/24") & ctx.value("dst_port", 80)
    p4 = ctx.ip_prefix("10.0.1.0/24") - ctx.value("dst_port", 80)
    rules = {
        "S": [Rule(p1, Action.forward_all(["A"]), 10)],
        "A": [
            Rule(p2, Action.forward_all(["B", "W"]), 20),
            Rule(p3, Action.forward_any(["B", "W"]), 20),  # ECMP blackbox
            Rule(p4, Action.forward_all(["W"]), 20),
        ],
        "B": [Rule(p3 | p4, Action.forward_all(["D"]), 10)],
        "W": [Rule(p1, Action.forward_all(["D"]), 10)],
        "D": [Rule(p1, Action.deliver(), 10)],
    }
    return rules, (p1, p2, p3, p4)


def main():
    ctx = PacketSpaceContext()
    topo = fig2a_example()
    rules, (p1, _p2, p3, _p4) = build_data_plane(ctx)

    # ------------------------------------------------------------------
    # 1. The invariant, written in the declarative language (§3).
    # ------------------------------------------------------------------
    spec = """
    invariant waypoint {
        packet_space: dst_ip = 10.0.0.0/23;
        ingress: S;
        behavior: exist >= 1 on (S .* W .* D) with loop_free;
    }
    """
    (invariant,) = parse_invariants(ctx, spec)
    print(f"invariant: {invariant}")

    # ------------------------------------------------------------------
    # 2. Ground truth: packet traces and universes (§2.1).
    # ------------------------------------------------------------------
    planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    for dev, dev_rules in rules.items():
        planes[dev].install_many(
            [Rule(r.match, r.action, r.priority) for r in dev_rules]
        )
    pkt_q = {"dst_ip": ip_to_int("10.0.1.1"), "dst_port": 80,
             "src_ip": 0, "src_port": 0, "proto": 0}
    print("\npacket q = 10.0.1.1:80 entering at S has universes:")
    for universe in enumerate_universes(planes, "S", pkt_q):
        print("  ", sorted(str(t) for t in universe))

    # ------------------------------------------------------------------
    # 3. Centralized verification: DPVNet + Algorithm 1 (§4).
    # ------------------------------------------------------------------
    planner = Planner(topo, ctx)
    net = planner.build_dpvnet(invariant)
    print(f"\nDPVNet: {net.stats()} — nodes "
          f"{sorted(n.label for n in net.nodes.values())}")
    result = planner.verify(invariant, planes)
    print(result.summary())
    for violation in result.violations:
        pkt = violation.example_packet()
        print(f"  counts per universe: {list(violation.counts)}; "
              f"witness packet dst_port={pkt['dst_port']}")

    # ------------------------------------------------------------------
    # 4. Distributed verification: on-device verifiers + DVM (§5).
    # ------------------------------------------------------------------
    runner = TulkunRunner(topo, ctx, [invariant])
    burst = runner.burst_update(rules)
    print(f"\ndistributed burst verification: {burst.verification_time * 1e3:.2f} ms "
          f"(simulated), {burst.messages} DVM messages")
    print(f"  verdict at S: holds={burst.holds[invariant.name]}")

    # ------------------------------------------------------------------
    # 5. The §2.2.3 incremental update: B re-points P3∪P4 to W.
    # ------------------------------------------------------------------
    network = runner.network
    b_plane = network.devices["B"].plane
    old_rule = b_plane.rules[0]
    new_rule = Rule(old_rule.match, Action.forward_all(["W"]), old_rule.priority)
    start = network.last_activity
    network.apply_rule_update(
        "B", at=start, install=new_rule, remove_rule_id=old_rule.rule_id
    )
    finish = network.run()
    print(f"\nafter B's rule update ({(finish - start) * 1e3:.2f} ms to re-verify):")
    print(f"  verdict at S: holds={network.all_hold(invariant.name)}")


if __name__ == "__main__":
    main()
