#!/usr/bin/env python3
"""Service chaining with packet transformations, multicast and anycast.

Three advanced behaviours on one small fabric:

1. **NAT rewrite** — the load balancer LB rewrites dst_port 80 → 8080 before
   forwarding to a backend; counting flows through the transformation via
   DVM SUBSCRIBE messages (§5.2 "Handling packet transformation").
2. **Multicast** — a monitoring tap requires every packet to reach both the
   backend and the collector (Table 1 row 10).
3. **Anycast** — two backends, exactly one of which must receive each
   packet (Table 1 row 11, the §4.3 joint-counting construction).

Run:  python examples/service_chain.py
"""

from repro.bdd import PacketSpaceContext
from repro.core import Planner
from repro.core.counting import CountExp
from repro.core.invariant import Atom, Invariant, MatchKind, PathExpr
from repro.core.library import anycast, multicast
from repro.dataplane import Action, DevicePlane, Rule, Transform
from repro.sim import TulkunRunner
from repro.topology import Topology


def build_topology():
    topo = Topology("service_chain")
    topo.add_link("GW", "LB")      # gateway → load balancer
    topo.add_link("LB", "BE1")     # backends
    topo.add_link("LB", "BE2")
    topo.add_link("LB", "COL")     # monitoring collector
    topo.attach_prefix("BE1", "10.8.0.0/24")
    topo.attach_prefix("BE2", "10.8.0.0/24")
    topo.attach_prefix("COL", "10.8.0.0/24")
    return topo


def main():
    ctx = PacketSpaceContext()
    topo = build_topology()
    web = ctx.ip_prefix("10.8.0.0/24") & ctx.value("dst_port", 80)
    rewritten = ctx.ip_prefix("10.8.0.0/24") & ctx.value("dst_port", 8080)

    # ------------------------------------------------------------------
    # 1. NAT rewrite through the chain GW → LB → BE1.
    # ------------------------------------------------------------------
    planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    planes["GW"].install_many([Rule(web, Action.forward_all(["LB"]), 10)])
    planes["LB"].install_many(
        [
            Rule(
                web,
                Action.forward_all(
                    ["BE1"], transform=Transform.set_fields(dst_port=8080)
                ),
                10,
            )
        ]
    )
    planes["BE1"].install_many([Rule(rewritten, Action.deliver(), 10)])

    chain = Invariant(
        web, ("GW",),
        Atom(PathExpr.parse("GW LB BE1"), MatchKind.EXIST, CountExp(">=", 1)),
        name="nat_chain",
    )
    planner = Planner(topo, ctx)
    result = planner.verify(chain, planes)
    print(f"NAT service chain (80 → 8080 rewrite): {result.summary()}")

    # The same, distributed: SUBSCRIBE messages let BE1 report counts for
    # the *rewritten* predicate back to LB.
    runner = TulkunRunner(topo, ctx, [chain])
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    burst = runner.burst_update(rules)
    lb = runner.network.devices["LB"].verifiers[chain.name]
    print(f"  distributed: holds={burst.holds[chain.name]}, "
          f"SUBSCRIBEs sent by LB: {lb.stats.subscribes_sent}")

    # Without the rewrite, BE1 would not match — and verification says so.
    bad_planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    bad_planes["GW"].install_many([Rule(web, Action.forward_all(["LB"]), 10)])
    bad_planes["LB"].install_many([Rule(web, Action.forward_all(["BE1"]), 10)])
    bad_planes["BE1"].install_many([Rule(rewritten, Action.deliver(), 10)])
    result = planner.verify(chain, bad_planes)
    print(f"  without the rewrite: {result.summary()}")

    # ------------------------------------------------------------------
    # 2. Multicast: every packet must reach BE1 *and* the collector.
    # ------------------------------------------------------------------
    space = ctx.ip_prefix("10.8.0.0/24")
    mc_planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    mc_planes["GW"].install_many([Rule(space, Action.forward_all(["LB"]), 10)])
    mc_planes["LB"].install_many(
        [Rule(space, Action.forward_all(["BE1", "COL"]), 10)]
    )
    mc_planes["BE1"].install_many([Rule(space, Action.deliver(), 10)])
    mc_planes["COL"].install_many([Rule(space, Action.deliver(), 10)])
    mc = multicast(space, "GW", ["BE1", "COL"])
    print(f"\nmulticast to backend + collector: "
          f"{planner.verify(mc, mc_planes).summary()}")

    # Drop the tap: multicast breaks.
    rule = mc_planes["LB"].rules[0]
    mc_planes["LB"].replace_rule(
        rule.rule_id, Rule(space, Action.forward_all(["BE1"]), 10)
    )
    print(f"  after losing the tap: {planner.verify(mc, mc_planes).summary()}")

    # ------------------------------------------------------------------
    # 3. Anycast: exactly one backend must receive each packet.
    # ------------------------------------------------------------------
    ac_planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    ac_planes["GW"].install_many([Rule(space, Action.forward_all(["LB"]), 10)])
    ac_planes["LB"].install_many(
        [Rule(space, Action.forward_any(["BE1", "BE2"]), 10)]  # ECMP pick-one
    )
    ac_planes["BE1"].install_many([Rule(space, Action.deliver(), 10)])
    ac_planes["BE2"].install_many([Rule(space, Action.deliver(), 10)])
    ac = anycast(space, "GW", ["BE1", "BE2"])
    result = planner.verify(ac, ac_planes)
    print(f"\nanycast across two backends: {result.summary()}")
    (region, counts) = result.source_counts["GW"][0]
    print(f"  joint (BE1, BE2) counts per universe: {sorted(counts)} "
          "(never both, never neither)")

    # Misconfigured as ALL: both backends get a copy → violated.
    rule = ac_planes["LB"].rules[0]
    ac_planes["LB"].replace_rule(
        rule.rule_id, Rule(space, Action.forward_all(["BE1", "BE2"]), 10)
    )
    print(f"  misconfigured as replication: "
          f"{planner.verify(ac, ac_planes).summary()}")


if __name__ == "__main__":
    main()
