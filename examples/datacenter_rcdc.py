#!/usr/bin/env python3
"""Data center example: all-shortest-path availability via local contracts.

Reproduces the RCDC-style invariant (Table 1 row 8, §4.2): in a fattree,
every ToR-to-ToR pair must have *all* of its shortest paths available.  The
planner proves the minimal counting information for ``equal`` invariants is
the empty set, so verification is purely local — every device checks that
its ECMP group covers all of its DPVNet node's downstream neighbors, with no
DVM messages at all.

The demo builds a correct ECMP fabric, verifies, then removes one ECMP group
member (the classic silent-partial-failure) and shows the local check
catching it at exactly the broken device.

Run:  python examples/datacenter_rcdc.py
"""

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.core import Planner
from repro.core.library import all_shortest_path_availability
from repro.dataplane import Action, DevicePlane, Rule
from repro.sim import TulkunRunner
from repro.topology import fattree


def ecmp_planes(topo, ctx, space, dest):
    """Full ECMP shortest-path forwarding toward one edge switch."""
    planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    distances = topo.hop_distances_to(dest)
    for dev in topo.devices:
        if dev == dest:
            planes[dev].install_many([Rule(space, Action.deliver(), 1)])
            continue
        next_hops = [
            n for n in topo.neighbors(dev)
            if distances.get(n, 1 << 30) == distances[dev] - 1
        ]
        if next_hops:
            planes[dev].install_many(
                [Rule(space, Action.forward_any(next_hops), 1)]
            )
    return planes


def main():
    topo = fattree(4)
    ctx = PacketSpaceContext(HeaderLayout.dst_only())
    src, dst = "edge_0_0", "edge_3_1"
    prefix = topo.external_prefixes[dst][0]
    space = ctx.ip_prefix(prefix)
    print(f"fattree k=4: {topo.num_devices} switches, {topo.num_links} links")
    print(f"invariant: all shortest {src} → {dst} paths available "
          f"(packet space {prefix})\n")

    invariant = all_shortest_path_availability(space, src, dst)
    planner = Planner(topo, ctx)
    net = planner.build_dpvnet(invariant)
    print(f"DPVNet of the shortest-path DAG: {net.stats()}")
    print(f"shortest paths represented: {len(net.enumerate_paths())}")

    planes = ecmp_planes(topo, ctx, space, dst)
    result = planner.verify(invariant, planes)
    print(f"\nfull ECMP fabric: {result.summary()}")

    # Distributed version: note zero DVM messages — the checks are local.
    runner = TulkunRunner(topo, ctx, [invariant])
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    burst = runner.burst_update(rules)
    print(f"distributed run: holds={burst.holds[invariant.name]}, "
          f"{burst.messages} DVM messages (local contracts need none)")

    # Break one ECMP member at the source edge switch.
    plane = planes[src]
    rule = plane.rules[0]
    group = rule.action.group
    plane.replace_rule(
        rule.rule_id, Rule(space, Action.forward_any(group[:1]), 1)
    )
    result = planner.verify(invariant, planes)
    print(f"\nafter dropping ECMP member {group[1]} at {src}: {result.summary()}")
    for violation in result.violations[:3]:
        print(f"  local violation at {violation.ingress}: {violation.message}")


if __name__ == "__main__":
    main()
