#!/usr/bin/env python3
"""Fault tolerance (§6): precomputed fault-tolerant DPVNet + online recount.

The invariant is (≤ shortest+1) reachability from S to D in the Figure 2a
network, required to survive any single link failure.  The planner
precomputes one DPVNet whose edges and acceptances are labeled per fault
scene (cf. Figure 8); when a failure floods through the network, verifiers
switch labels and recount — without ever contacting the planner.

Run:  python examples/fault_tolerance.py
"""

from repro.bdd import PacketSpaceContext
from repro.core import Planner
from repro.core.counting import CountExp
from repro.core.fault import compute_fault_plan
from repro.core.invariant import (
    Atom,
    FaultSpec,
    Invariant,
    LengthFilter,
    MatchKind,
    PathExpr,
)
from repro.dataplane import Action, DevicePlane, Rule
from repro.sim import TulkunRunner
from repro.topology import fig2a_example


def build_planes(ctx, topo, space):
    """Shortest-path-ish forwarding with a protection alternative at A."""
    planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    planes["S"].install_many([Rule(space, Action.forward_all(["A"]), 1)])
    planes["A"].install_many([Rule(space, Action.forward_any(["B", "W"]), 1)])
    planes["B"].install_many([Rule(space, Action.forward_all(["D"]), 1)])
    planes["W"].install_many([Rule(space, Action.forward_all(["D"]), 1)])
    planes["D"].install_many([Rule(space, Action.deliver(), 1)])
    return planes


def main():
    ctx = PacketSpaceContext()
    topo = fig2a_example()
    space = ctx.ip_prefix("10.0.0.0/23")
    invariant = Invariant(
        space,
        ("S",),
        Atom(
            PathExpr.parse("S .* D", (LengthFilter("<=", "shortest", 1),), True),
            MatchKind.EXIST,
            CountExp(">=", 1),
        ),
        FaultSpec.up_to(1),
        name="ft_reach",
    )
    print(f"invariant: {invariant}")
    print("fault spec: tolerate any single link failure\n")

    planner = Planner(topo, ctx)
    plan = compute_fault_plan(planner, invariant)
    print(f"fault-tolerant DPVNet: {plan.net.stats()}, "
          f"{len(plan.scenes)} scenes precomputed")
    if plan.intolerable:
        print("intolerable scenes:",
              [sorted(s.failed_links) for s in plan.intolerable])
    else:
        print("every single-link failure scene has surviving valid paths")

    # Deploy with the labeled DPVNet; scene 0 (no failure) is active.
    runner = TulkunRunner(topo, ctx, [invariant],
                          prebuilt_nets={invariant.name: plan.net})
    planes = build_planes(ctx, topo, space)
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    burst = runner.burst_update(rules)
    print(f"\nbase scene: holds={burst.holds[invariant.name]} "
          f"({burst.verification_time * 1e3:.2f} ms)")

    # Fail W–D.  The static data plane still has A's ANY group pointing at
    # W (whose only exit is the dead link) — the recount correctly flags
    # that a universe exists where the packet dies at W.
    scene = plan.scene_for([("W", "D")])
    duration = runner.fail_links([("W", "D")], scene_id=scene.scene_id)
    network = runner.network
    print(f"\nlink W–D fails (scene {scene.scene_id}): recount took "
          f"{duration * 1e3:.2f} ms, holds={network.all_hold(invariant.name)} "
          "(W still points at the dead link)")

    # Routing reconverges: W reroutes to B.  Verifiers pick the update up as
    # an ordinary incremental event and the invariant holds again — along
    # the scene-labeled S,A,W,B,D path of the fault-tolerant DPVNet.
    w_plane = network.devices["W"].plane
    victim = w_plane.rules[0]
    network.apply_rule_update(
        "W", at=network.last_activity,
        install=Rule(space, Action.forward_all(["B"]), 1),
        remove_rule_id=victim.rule_id,
    )
    network.run()
    print(f"W reroutes to B: holds={network.all_hold(invariant.name)}")

    # The failure clears and W's original route comes back.
    runner.recover_links([("W", "D")])
    restored = network.devices["W"].plane.rules[0]
    network.apply_rule_update(
        "W", at=network.last_activity,
        install=Rule(space, Action.forward_all(["D"]), 1),
        remove_rule_id=restored.rule_id,
    )
    network.run()
    print(f"link W–D recovers: holds={network.all_hold(invariant.name)}")

    # Now fail S–A: the only egress from S — an intolerable scene for S.
    scene = plan.scene_for([("A", "S")])
    runner.fail_links([("A", "S")], scene_id=scene.scene_id)
    print(f"\nlink S–A fails (scene {scene.scene_id}): "
          f"holds={runner.network.all_hold(invariant.name)} "
          "(no surviving path — correctly reported as a violation)")


if __name__ == "__main__":
    main()
