"""BDD manager: canonicity, boolean algebra, counting, quantification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import FALSE, TRUE, BddManager


@pytest.fixture
def mgr() -> BddManager:
    return BddManager(8)


class TestNodeConstruction:
    def test_terminals_are_fixed(self, mgr):
        assert FALSE == 0
        assert TRUE == 1

    def test_var_and_negation(self, mgr):
        v = mgr.var(3)
        nv = mgr.nvar(3)
        assert mgr.apply_not(v) == nv
        assert mgr.apply_not(nv) == v

    def test_var_out_of_range(self, mgr):
        with pytest.raises(ValueError):
            mgr.var(8)
        with pytest.raises(ValueError):
            mgr.nvar(-1)

    def test_hash_consing_shares_nodes(self, mgr):
        a = mgr.apply_and(mgr.var(0), mgr.var(1))
        b = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert a == b

    def test_redundant_node_collapses(self, mgr):
        # ite(x, y, y) must not create a node for x.
        y = mgr.var(1)
        assert mgr.ite(mgr.var(0), y, y) == y


class TestBooleanAlgebra:
    def test_and_or_identities(self, mgr):
        x = mgr.var(0)
        assert mgr.apply_and(x, TRUE) == x
        assert mgr.apply_and(x, FALSE) == FALSE
        assert mgr.apply_or(x, FALSE) == x
        assert mgr.apply_or(x, TRUE) == TRUE

    def test_complement(self, mgr):
        x = mgr.var(2)
        assert mgr.apply_and(x, mgr.apply_not(x)) == FALSE
        assert mgr.apply_or(x, mgr.apply_not(x)) == TRUE

    def test_xor(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        xor = mgr.apply_xor(x, y)
        manual = mgr.apply_or(
            mgr.apply_diff(x, y), mgr.apply_diff(y, x)
        )
        assert xor == manual

    def test_implies_subset(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        both = mgr.apply_and(x, y)
        assert mgr.implies(both, x)
        assert not mgr.implies(x, both)

    def test_overlaps(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        assert mgr.overlaps(x, y)
        assert not mgr.overlaps(x, mgr.apply_not(x))


class TestCounting:
    def test_count_terminals(self, mgr):
        assert mgr.count(FALSE) == 0
        assert mgr.count(TRUE) == 2**8

    def test_count_single_var(self, mgr):
        assert mgr.count(mgr.var(0)) == 2**7
        assert mgr.count(mgr.var(7)) == 2**7

    def test_count_conjunction(self, mgr):
        node = mgr.apply_and(mgr.var(0), mgr.var(5))
        assert mgr.count(node) == 2**6

    def test_count_disjoint_union_adds(self, mgr):
        x = mgr.var(0)
        a = mgr.apply_and(x, mgr.var(1))
        b = mgr.apply_and(mgr.apply_not(x), mgr.var(2))
        assert mgr.count(mgr.apply_or(a, b)) == mgr.count(a) + mgr.count(b)

    def test_zero_var_manager(self):
        mgr = BddManager(0)
        assert mgr.count(TRUE) == 1
        assert mgr.count(FALSE) == 0


class TestPickAndCubes:
    def test_pick_one_none_for_false(self, mgr):
        assert mgr.pick_one(FALSE) is None

    def test_pick_one_satisfies(self, mgr):
        node = mgr.apply_and(mgr.var(1), mgr.nvar(4))
        assignment = mgr.pick_one(node)
        assert assignment[1] is True
        assert assignment[4] is False

    def test_iter_cubes_cover_function(self, mgr):
        node = mgr.apply_or(mgr.var(0), mgr.var(3))
        rebuilt = FALSE
        for cube in mgr.iter_cubes(node):
            rebuilt = mgr.apply_or(rebuilt, mgr.cube(cube))
        assert rebuilt == node

    def test_cube_builds_conjunction(self, mgr):
        node = mgr.cube({0: True, 3: False, 6: True})
        expected = mgr.apply_and(
            mgr.apply_and(mgr.var(0), mgr.nvar(3)), mgr.var(6)
        )
        assert node == expected


class TestExists:
    def test_exists_removes_variable(self, mgr):
        node = mgr.apply_and(mgr.var(0), mgr.var(1))
        projected = mgr.exists(node, frozenset({0}))
        assert projected == mgr.var(1)

    def test_exists_of_tautology_over_var(self, mgr):
        x = mgr.var(0)
        node = mgr.apply_or(x, mgr.apply_not(x))
        assert mgr.exists(node, frozenset({0})) == TRUE

    def test_exists_count_doubles(self, mgr):
        node = mgr.apply_and(mgr.var(0), mgr.var(1))
        projected = mgr.exists(node, frozenset({0}))
        assert mgr.count(projected) == 2 * mgr.count(node)


@st.composite
def boolean_expr(draw, num_vars=5, depth=3):
    """Random boolean function as (python eval lambda, bdd node builder)."""
    if depth == 0 or draw(st.booleans()):
        index = draw(st.integers(0, num_vars - 1))
        return ("var", index)
    op = draw(st.sampled_from(["and", "or", "not"]))
    if op == "not":
        return ("not", draw(boolean_expr(num_vars=num_vars, depth=depth - 1)))
    left = draw(boolean_expr(num_vars=num_vars, depth=depth - 1))
    right = draw(boolean_expr(num_vars=num_vars, depth=depth - 1))
    return (op, left, right)


def _to_bdd(mgr: BddManager, expr) -> int:
    if expr[0] == "var":
        return mgr.var(expr[1])
    if expr[0] == "not":
        return mgr.apply_not(_to_bdd(mgr, expr[1]))
    left = _to_bdd(mgr, expr[1])
    right = _to_bdd(mgr, expr[2])
    return mgr.apply_and(left, right) if expr[0] == "and" else mgr.apply_or(left, right)


def _eval(expr, assignment) -> bool:
    if expr[0] == "var":
        return assignment[expr[1]]
    if expr[0] == "not":
        return not _eval(expr[1], assignment)
    left = _eval(expr[1], assignment)
    right = _eval(expr[2], assignment)
    return (left and right) if expr[0] == "and" else (left or right)


class TestPropertyBased:
    @given(boolean_expr())
    @settings(max_examples=150, deadline=None)
    def test_bdd_agrees_with_truth_table(self, expr):
        mgr = BddManager(5)
        node = _to_bdd(mgr, expr)
        count = 0
        for bits in range(32):
            assignment = [(bits >> (4 - i)) & 1 == 1 for i in range(5)]
            if _eval(expr, assignment):
                count += 1
        assert mgr.count(node) == count

    @given(boolean_expr(), boolean_expr())
    @settings(max_examples=100, deadline=None)
    def test_de_morgan(self, e1, e2):
        mgr = BddManager(5)
        a, b = _to_bdd(mgr, e1), _to_bdd(mgr, e2)
        lhs = mgr.apply_not(mgr.apply_and(a, b))
        rhs = mgr.apply_or(mgr.apply_not(a), mgr.apply_not(b))
        assert lhs == rhs

    @given(boolean_expr())
    @settings(max_examples=100, deadline=None)
    def test_double_negation(self, expr):
        mgr = BddManager(5)
        node = _to_bdd(mgr, expr)
        assert mgr.apply_not(mgr.apply_not(node)) == node

    @given(boolean_expr(), boolean_expr())
    @settings(max_examples=100, deadline=None)
    def test_diff_truth_table(self, e1, e2):
        mgr = BddManager(5)
        a, b = _to_bdd(mgr, e1), _to_bdd(mgr, e2)
        diff = mgr.apply_diff(a, b)
        assert diff == mgr.apply_and(a, mgr.apply_not(b))
        count = 0
        for bits in range(32):
            assignment = [(bits >> (4 - i)) & 1 == 1 for i in range(5)]
            if _eval(e1, assignment) and not _eval(e2, assignment):
                count += 1
        assert mgr.count(diff) == count

    @given(boolean_expr(), boolean_expr())
    @settings(max_examples=100, deadline=None)
    def test_xor_truth_table(self, e1, e2):
        mgr = BddManager(5)
        a, b = _to_bdd(mgr, e1), _to_bdd(mgr, e2)
        xor = mgr.apply_xor(a, b)
        assert xor == mgr.apply_or(
            mgr.apply_diff(a, b), mgr.apply_diff(b, a)
        )
        count = 0
        for bits in range(32):
            assignment = [(bits >> (4 - i)) & 1 == 1 for i in range(5)]
            if _eval(e1, assignment) != _eval(e2, assignment):
                count += 1
        assert mgr.count(xor) == count

    @given(boolean_expr(), boolean_expr())
    @settings(max_examples=100, deadline=None)
    def test_commutative_caches_normalize(self, e1, e2):
        mgr = BddManager(5)
        a, b = _to_bdd(mgr, e1), _to_bdd(mgr, e2)
        assert mgr.apply_and(a, b) == mgr.apply_and(b, a)
        assert mgr.apply_or(a, b) == mgr.apply_or(b, a)
        assert mgr.apply_xor(a, b) == mgr.apply_xor(b, a)


class TestEngineInternals:
    def test_exists_memo_reused_across_calls(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.apply_or(mgr.var(1), mgr.var(2)))
        variables = frozenset({1, 2})
        first = mgr.exists(f, variables)
        assert (f, variables) in mgr._exists_cache
        misses_after_first = mgr.stats.cache_misses
        assert mgr.exists(f, variables) == first
        # Second call is answered from the manager-level memo: no new
        # recursion steps at all.
        assert mgr.stats.cache_misses == misses_after_first

    def test_not_involution_memo_is_constant_time(self, mgr):
        f = mgr.apply_or(
            mgr.apply_and(mgr.var(0), mgr.var(1)),
            mgr.apply_and(mgr.var(2), mgr.nvar(3)),
        )
        nf = mgr.apply_not(f)
        misses_before = mgr.stats.cache_misses
        # Both directions of the involution were memoized by the first walk.
        assert mgr.apply_not(nf) == f
        assert mgr.apply_not(f) == nf
        assert mgr.stats.cache_misses == misses_before

    def test_deep_bdds_do_not_recurse(self):
        """Kernels must survive operand depth far beyond Python's recursion
        limit (wide WAN header layouts build BDDs hundreds of levels deep)."""
        import sys

        num_vars = 600
        mgr = BddManager(num_vars)
        wide_a = mgr.cube({i: (i % 2 == 0) for i in range(num_vars)})
        wide_b = mgr.cube({i: (i % 3 != 1) for i in range(num_vars)})
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(90)
        try:
            # The cubes conflict (e.g. bit 4: a wants 1, b wants 0).
            assert mgr.apply_and(wide_a, wide_b) == FALSE
            union = mgr.apply_or(wide_a, wide_b)
            assert mgr.apply_diff(union, wide_b) != union
            assert mgr.apply_xor(wide_a, wide_a) == FALSE
            complement = mgr.apply_not(union)
            assert mgr.apply_not(complement) == union
            assert mgr.count(union) > 0
        finally:
            sys.setrecursionlimit(limit)

    def test_stats_count_ops_and_peak(self, mgr):
        mgr.apply_and(mgr.var(0), mgr.var(1))
        mgr.apply_or(mgr.var(1), mgr.var(2))
        mgr.apply_not(mgr.var(0))
        snap = mgr.profile()
        assert snap["ops_and"] == 1
        assert snap["ops_or"] == 1
        assert snap["ops_not"] == 1
        assert snap["peak_nodes"] >= mgr.node_count() - 0
        assert snap["table_nodes"] == mgr.node_count()

    def test_size_matches_reachable_set(self, mgr):
        f = mgr.apply_or(
            mgr.apply_and(mgr.var(0), mgr.var(1)),
            mgr.apply_and(mgr.var(2), mgr.var(3)),
        )
        seen = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n in seen or n in (FALSE, TRUE):
                continue
            seen.add(n)
            stack.append(mgr.low(n))
            stack.append(mgr.high(n))
        assert mgr.size(f) == len(seen)
