"""Telemetry subsystem: Lamport causality, exporters, provenance, metrics.

The event log is the product here, so these tests pin its semantics: Lamport
clocks are monotone per device and merge across sends, the Chrome trace
export obeys the schema Perfetto requires (golden-schema test), the timeline
and provenance reports name the right protocol actions, and — critically —
attaching a tracer never perturbs the run it observes.
"""

import json

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.language import parse_invariants
from repro.dataplane.device import DevicePlane
from repro.dataplane.fib import parse_fib_text
from repro.dataplane.rule import Rule
from repro.sim import ChaosConfig, TulkunRunner
from repro.telemetry import (
    Tracer,
    convergence_timeline,
    export_chrome_trace,
    outcome_snapshot,
    violation_provenance,
)
from repro.telemetry.events import (
    DVM_DELIVER,
    DVM_SEND,
    SPAN_KINDS,
    VERDICT,
)
from repro.topology.fileformat import parse_topology_text

# The paper's Figure 2a erroneous example: 'waypoint' is VIOLATED via a
# causal chain of UPDATEs (D -> W -> A -> S), 'reach' HOLDS.
TOPOLOGY = """
topology fig2a
link S A 0.00001
link A B 0.00001
link A W 0.00001
link B W 0.00001
link B D 0.00001
link W D 0.00001
prefix D 10.0.0.0/23
"""

FIB = """
# device S
200 10.0.0.0/23 ALL A
# device A
210 10.0.0.0/24 ALL B,W
205 10.0.1.0/24 ANY B,W
# device B
200 10.0.1.0/24 ALL D
# device W
200 10.0.0.0/23 ALL D
# device D
200 10.0.0.0/23 ALL @ext
"""

SPEC = """
invariant waypoint {
    packet_space: dst_ip = 10.0.0.0/23;
    ingress: S;
    behavior: exist >= 1 on (S .* W .* D) with loop_free;
}
invariant reach {
    packet_space: dst_ip = 10.0.0.0/23;
    ingress: S;
    behavior: exist >= 1 on (S .* D) with loop_free;
}
"""


def build_runner(chaos=None, predicate_index="atoms", tracer=None):
    ctx = PacketSpaceContext()
    topology = parse_topology_text(TOPOLOGY)
    planes = parse_fib_text(ctx, FIB)
    invariants = parse_invariants(ctx, SPEC)
    for dev in topology.devices:
        planes.setdefault(dev, DevicePlane(dev, ctx))
    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        cpu_scale=0.0,
        predicate_index=predicate_index,
        chaos=chaos,
        tracer=tracer,
    )
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    runner.burst_update(rules)
    return runner


@pytest.fixture(scope="module")
def traced_chaos_run():
    tracer = Tracer()
    runner = build_runner(
        chaos=ChaosConfig(seed=11, p_loss=0.15, p_dup=0.1, p_reorder=0.1),
        tracer=tracer,
    )
    return runner, tracer


class TestLamportCausality:
    def test_monotone_per_device(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        last = {}
        for event in tracer.events:
            assert event.lamport > last.get(event.device, 0), (
                f"lamport regressed on {event.device!r} at seq {event.seq}"
            )
            last[event.device] = event.lamport

    def test_deliver_happens_after_send(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        delivers = [e for e in tracer.events if e.kind == DVM_DELIVER]
        assert delivers
        for deliver in delivers:
            assert deliver.lamport > deliver.fields["send_lamport"]

    def test_every_delivery_has_a_send(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        send_ids = {
            e.fields["msg_id"] for e in tracer.events if e.kind == DVM_SEND
        }
        for event in tracer.events:
            if event.kind == DVM_DELIVER:
                assert event.fields["msg_id"] in send_ids

    def test_verdict_events_recorded(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        verdicts = [e for e in tracer.events if e.kind == VERDICT]
        invariants = {e.fields["invariant"] for e in verdicts}
        assert invariants == {"waypoint", "reach"}
        final = {}
        for event in verdicts:
            final[event.fields["invariant"]] = event.fields["ok"]
        assert final == {"waypoint": False, "reach": True}

    def test_transport_events_match_metrics(self, traced_chaos_run):
        runner, tracer = traced_chaos_run
        summary = runner.network.transport_summary()
        retransmits = sum(
            1 for e in tracer.events if e.kind == "transport_retransmit"
        )
        dup_drops = sum(
            1 for e in tracer.events if e.kind == "transport_dup_drop"
        )
        assert retransmits == summary["retransmits"]
        assert dup_drops == summary["dup_drops"]
        assert any(e.kind == "transport_send" for e in tracer.events)


class TestTracerOverheadDiscipline:
    def test_disabled_tracer_is_detached_and_empty(self):
        tracer = Tracer(enabled=False)
        runner = build_runner(tracer=tracer)
        assert runner.network.tracer is None
        assert tracer.events == []

    def test_tracing_does_not_perturb_outcomes(self):
        chaos = ChaosConfig(seed=5, p_loss=0.2, p_dup=0.1, p_reorder=0.1)
        plain = outcome_snapshot(build_runner(chaos=chaos))
        traced = outcome_snapshot(build_runner(chaos=chaos, tracer=Tracer()))
        assert plain == traced


class TestChromeExportGoldenSchema:
    """Pin the trace-event JSON shape Perfetto/chrome://tracing loads."""

    @pytest.fixture(scope="class")
    def doc(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        return export_chrome_trace(tracer.events, metadata={"mode": "atoms"})

    def test_required_top_level_keys(self, doc):
        assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["format"] == "tulkun-telemetry-v1"
        assert doc["otherData"]["mode"] == "atoms"
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable

    def test_event_required_keys(self, doc):
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(event)
            assert event["ph"] in ("M", "B", "E", "i", "s", "f")

    def test_one_named_track_per_device(self, doc, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        devices = {e.device for e in tracer.events}
        expected = {dev if dev else "kernel" for dev in devices}
        assert names == expected

    def test_timestamps_monotone_per_track(self, doc):
        last = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, 0.0)
            last[key] = event["ts"]

    def test_spans_balanced_and_stack_matched(self, doc):
        stacks = {}
        for event in doc["traceEvents"]:
            key = (event["pid"], event["tid"])
            if event["ph"] == "B":
                stacks.setdefault(key, []).append(event["name"])
            elif event["ph"] == "E":
                stack = stacks.get(key)
                assert stack, f"E without open B on track {key}"
                assert stack.pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_flow_arrows_pair_send_to_deliver(self, doc):
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert starts and finishes
        start_ids = {e["id"] for e in starts}
        for finish in finishes:
            assert finish["id"] in start_ids
            assert finish["bp"] == "e"


class TestTimelineAndProvenance:
    def test_timeline_tells_the_story(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        text = convergence_timeline(tracer.events)
        assert "invariant 'waypoint'" in text
        assert "invariant 'reach'" in text
        assert "verdict at S" in text
        assert "final [S]: VIOLATED" in text
        assert "final [S]: HOLDS" in text
        assert "send(s)" in text

    def test_timeline_single_invariant_filter(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        text = convergence_timeline(tracer.events, invariant="reach")
        assert "invariant 'reach'" in text
        assert "invariant 'waypoint'" not in text

    def test_provenance_names_the_causal_updates(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        text = violation_provenance(tracer.events)
        assert "invariant 'waypoint'" in text
        assert "ingress 'S'" in text
        assert "VIOLATED" in text
        # The violating count flows D -> W -> A -> S; the cone must name the
        # UPDATE deliveries that carried it.
        assert "UpdateMessage" in text
        assert "A -> S" in text
        # The holding invariant contributes nothing.
        assert "invariant 'reach'" not in text

    def test_provenance_clean_trace(self):
        tracer = Tracer()
        runner = build_runner(tracer=tracer)
        good = [
            e
            for e in tracer.events
            if e.fields.get("invariant") != "waypoint"
        ]
        text = violation_provenance(good)
        assert "no violated verdicts" in text
        assert runner.network is not None


class TestMetricsExport:
    def test_to_dict_round_trips_as_json(self, traced_chaos_run):
        runner, _tracer = traced_chaos_run
        doc = runner.network.metrics.to_dict()
        again = json.loads(json.dumps(doc))
        assert again == doc
        assert set(doc) >= {
            "devices",
            "workers",
            "engines",
            "atom_indexes",
            "totals",
        }
        assert set(doc["devices"]) == {"S", "A", "B", "W", "D"}
        totals = doc["totals"]
        assert totals["messages"] == runner.network.metrics.total_messages()
        assert totals["transport"]["retransmits"] >= 1

    def test_per_device_counters_survive(self, traced_chaos_run):
        runner, _tracer = traced_chaos_run
        doc = runner.network.metrics.to_dict()
        for name, metrics in runner.network.metrics.devices.items():
            row = doc["devices"][name]
            assert row["messages_sent"] == metrics.messages_sent
            assert row["bytes_sent"] == metrics.bytes_sent
            assert row["retransmits"] == metrics.retransmits


class TestEventSerialization:
    def test_round_trip(self, traced_chaos_run):
        from repro.telemetry.events import TraceEvent

        _runner, tracer = traced_chaos_run
        for event in tracer.events[:50]:
            again = TraceEvent.from_dict(
                json.loads(json.dumps(event.to_dict()))
            )
            assert again == event

    def test_span_kinds_carry_start_finish(self, traced_chaos_run):
        _runner, tracer = traced_chaos_run
        spans = [e for e in tracer.events if e.kind in SPAN_KINDS]
        assert spans
        for span in spans:
            assert span.fields["finish"] >= span.fields["start"]
