"""Centralized baselines: each tool must agree with the trace-level ground
truth (and hence with Tulkun) on correct and corrupted data planes."""

import pytest

from repro.baselines import (
    ALL_BASELINES,
    ApKeepVerifier,
    ApVerifier,
    CollectionModel,
    DeltaNetVerifier,
    FlashVerifier,
    ReachabilityQuery,
    VeriFlowVerifier,
    compute_atomic_predicates,
)
from repro.dataplane import Action, DevicePlane, Rule
from repro.datasets import build_dataset
from repro.topology import fig2a_example


def fresh_planes(ds):
    planes = {}
    for dev, rules in ds.rules_by_device.items():
        plane = DevicePlane(dev, ds.ctx)
        plane.install_many(
            [Rule(r.match, r.action, r.priority) for r in rules]
        )
        planes[dev] = plane
    return planes


@pytest.fixture(scope="module")
def inet2():
    return build_dataset("INet2", pair_limit=8, seed=3)


class TestAtomicPredicates:
    def test_atoms_partition_space(self, inet2):
        planes = fresh_planes(inet2)
        atoms = compute_atomic_predicates(inet2.ctx, planes)
        union = inet2.ctx.union(atoms)
        assert union.is_universe
        for i, a in enumerate(atoms):
            for b in atoms[i + 1:]:
                assert not a.overlaps(b)

    def test_atoms_respect_lec_boundaries(self, inet2):
        """Every atom lies inside a single LEC on every device."""
        planes = fresh_planes(inet2)
        atoms = compute_atomic_predicates(inet2.ctx, planes)
        for atom in atoms:
            for plane in planes.values():
                assert len(plane.fwd(atom)) == 1


class TestCollectionModel:
    def test_burst_collection_dominated_by_farthest(self, inet2):
        planes = fresh_planes(inet2)
        model = CollectionModel(inet2.topology, inet2.topology.devices[0])
        t = model.burst_collection_time(planes)
        latencies = inet2.topology.latency_distances_from(
            inet2.topology.devices[0]
        )
        assert t >= max(latencies.values())

    def test_update_latency_positive(self, inet2):
        model = CollectionModel(inet2.topology, inet2.topology.devices[0])
        for dev in inet2.topology.devices[1:]:
            assert model.update_latency(dev) > 0


@pytest.mark.parametrize("tool_cls", ALL_BASELINES, ids=lambda c: c.name)
class TestAllTools:
    def test_correct_plane_passes(self, inet2, tool_cls):
        tool = tool_cls(inet2.topology, inet2.ctx, inet2.queries)
        report = tool.burst_verify(fresh_planes(inet2))
        assert report.holds, report.errors[:3]
        assert report.verification_time > 0

    def test_blackhole_detected(self, inet2, tool_cls):
        planes = fresh_planes(inet2)
        # Blackhole one transit rule on the path of the first query.
        query = inet2.queries[0]
        victim_dev = query.ingress
        plane = planes[victim_dev]
        target = inet2.ctx.ip_prefix(query.prefix)
        for rule in plane.rules:
            if rule.match == target:
                plane.replace_rule(
                    rule.rule_id, Rule(rule.match, Action.drop(), rule.priority)
                )
                break
        tool = tool_cls(inet2.topology, inet2.ctx, inet2.queries)
        report = tool.burst_verify(planes)
        assert not report.holds

    def test_incremental_error_then_fix(self, inet2, tool_cls):
        """Break a rule incrementally, then restore it: the tool must flag
        the break and accept the fix."""
        planes = fresh_planes(inet2)
        tool = tool_cls(inet2.topology, inet2.ctx, inet2.queries)
        assert tool.burst_verify(planes).holds
        query = inet2.queries[0]
        plane = planes[query.ingress]
        target = inet2.ctx.ip_prefix(query.prefix)
        victim = next(r for r in plane.rules if r.match == target)
        broken = Rule(victim.match, Action.drop(), victim.priority)
        report = tool.incremental_verify(
            query.ingress, install=broken, remove_rule_id=victim.rule_id
        )
        assert not report.holds
        fixed = Rule(victim.match, victim.action, victim.priority)
        report = tool.incremental_verify(
            query.ingress, install=fixed, remove_rule_id=broken.rule_id
        )
        assert report.holds


class TestToolCharacteristics:
    def test_apkeep_incremental_faster_than_ap_full(self, inet2):
        """APKeep's incremental path must do less compute than AP's full
        recompute for a single-rule update."""
        planes_a = fresh_planes(inet2)
        planes_b = fresh_planes(inet2)
        ap = ApVerifier(inet2.topology, inet2.ctx, inet2.queries)
        apkeep = ApKeepVerifier(inet2.topology, inet2.ctx, inet2.queries)
        ap.burst_verify(planes_a)
        apkeep.burst_verify(planes_b)

        def one_update(tool, planes):
            dev = inet2.queries[0].ingress
            victim = planes[dev].rules[0]
            clone = Rule(victim.match, Action.drop(), victim.priority)
            report = tool.incremental_verify(
                dev, install=clone, remove_rule_id=victim.rule_id
            )
            return report.compute_time

        assert one_update(apkeep, planes_b) < one_update(ap, planes_a)

    def test_deltanet_interval_atoms(self, inet2):
        tool = DeltaNetVerifier(inet2.topology, inet2.ctx, inet2.queries)
        tool.burst_verify(fresh_planes(inet2))
        # Boundaries are sorted and bracket the space.
        assert tool._boundaries[0] == 0
        assert tool._boundaries[-1] == 1 << 32
        assert tool._boundaries == sorted(tool._boundaries)

    def test_veriflow_trie_lookup(self, inet2):
        tool = VeriFlowVerifier(inet2.topology, inet2.ctx, inet2.queries)
        tool.burst_verify(fresh_planes(inet2))
        from repro.bdd.fields import ip_to_int

        prefix = inet2.queries[0].prefix
        base, _, length = prefix.partition("/")
        overlapping = tool._overlapping_rules(ip_to_int(base), int(length))
        assert overlapping  # the query prefix has installed rules
