"""Chaos convergence: fault-injected DVM runs must converge byte-identically.

Property-based harness over seeded fault schedules (message loss,
duplication, reordering at mixed rates): for every schedule the converged
verdict flags, canonical source-node counting results (merged ROBDD bytes)
and violation regions must equal the reliable-transport baseline — which is
itself pinned equal across the serial/process backends and the atoms/bdd
predicate-index modes.  A partitioned topology must degrade to
``UNKNOWN(unreachable_upstream)`` within the event budget instead of
hanging or silently reporting stale counts.

All chaos runs use ``cpu_scale=0`` so the simulation is event-order
deterministic and each seed names one exact fault schedule.

With ``REPRO_CHAOS_SUMMARY`` set to a path, the suite appends one row per
schedule (seed, rates, events, retransmits, convergence time) and writes the
JSON summary at session end — CI uploads it as an artifact.
"""

import json
import os
from pathlib import Path

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Action, Rule
from repro.datasets import build_dataset
from repro.sim import ChaosConfig, TransportConfig, TulkunRunner
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes
from tests.test_parallel_backend import (
    serial_fingerprints,
    verdict_flags,
    violation_fingerprints,
)

pytestmark = pytest.mark.chaos

# Mixed-rate schedule matrix: seed i runs rates ROW[i % len(ROWS)], so a
# seed range sweeps loss-only, dup-only, reorder-only and mixed regimes.
RATE_ROWS = [
    (0.10, 0.00, 0.00),
    (0.00, 0.20, 0.00),
    (0.00, 0.00, 0.30),
    (0.15, 0.10, 0.15),
    (0.25, 0.05, 0.10),
    (0.05, 0.25, 0.25),
    (0.30, 0.15, 0.20),
    (0.20, 0.20, 0.30),
]


def chaos_for(seed: int) -> ChaosConfig:
    p_loss, p_dup, p_reorder = RATE_ROWS[seed % len(RATE_ROWS)]
    return ChaosConfig(
        seed=seed, p_loss=p_loss, p_dup=p_dup, p_reorder=p_reorder
    )


_SUMMARY_ROWS = []


@pytest.fixture(scope="module", autouse=True)
def _write_summary():
    yield
    path = os.environ.get("REPRO_CHAOS_SUMMARY")
    if not path or not _SUMMARY_ROWS:
        return
    Path(path).write_text(
        json.dumps({"schedules": _SUMMARY_ROWS}, indent=2), encoding="utf-8"
    )


def _record(topology, seed, config, runner, convergence_time):
    summary = runner.network.transport_summary()
    _SUMMARY_ROWS.append(
        {
            "topology": topology,
            "seed": seed,
            "p_loss": config.p_loss,
            "p_dup": config.p_dup,
            "p_reorder": config.p_reorder,
            "events": runner.network.kernel.events_processed,
            "retransmits": summary["retransmits"],
            "dup_drops": summary["dup_drops"],
            "reorder_buffered": summary["reorder_buffered"],
            "convergence_time": convergence_time,
        }
    )


def fingerprints(runner, invariants):
    network = runner.network
    if hasattr(network, "source_fingerprints"):  # process backend
        sources = network.source_fingerprints()
    else:
        sources = serial_fingerprints(runner)
    return (
        verdict_flags(network, invariants),
        sources,
        violation_fingerprints(network, invariants),
    )


# ----------------------------------------------------------------------
# Fig-2a: burst + link churn + incremental update
# ----------------------------------------------------------------------
def fig2a_scenario(
    chaos=None,
    predicate_index="atoms",
    backend="serial",
    break_plane=False,
    transport_config=None,
):
    ctx = PacketSpaceContext()
    topology = fig2a_example()
    p1 = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        reachability(p1, "S", "D"),
        waypoint_reachability(p1, "S", "W", "D"),
    ]
    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        cpu_scale=0.0,
        backend=backend,
        workers=2 if backend == "process" else None,
        predicate_index=predicate_index,
        chaos=chaos,
        transport_config=transport_config,
    )
    planes = build_fig2_planes(ctx)
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    if break_plane:
        rules["W"] = [
            Rule(r.match, Action.drop(), r.priority) for r in rules["W"]
        ]
    try:
        runner.burst_update(rules)
        runner.fail_links([("A", "W")])
        runner.recover_links([("A", "W")])
        victim = runner.network.devices["S"].plane.rules[0]
        runner.incremental_updates(
            [
                (
                    "S",
                    Rule(victim.match, Action.forward_all(["B"]), victim.priority),
                    victim.rule_id,
                ),
            ]
        )
        restored = runner.network.devices["S"].plane.rules[0]
        runner.incremental_updates(
            [
                (
                    "S",
                    Rule(restored.match, Action.forward_all(["A"]), restored.priority),
                    restored.rule_id,
                ),
            ]
        )
        return runner, fingerprints(runner, invariants), invariants
    except Exception:
        runner.close()
        raise


@pytest.fixture(scope="module")
def fig2a_baseline():
    runner, prints, _invs = fig2a_scenario()
    return prints


@pytest.fixture(scope="module")
def fig2a_broken_baseline():
    runner, prints, _invs = fig2a_scenario(break_plane=True)
    return prints


@pytest.fixture(scope="module")
def ft4():
    return build_dataset("FT-4", pair_limit=8, seed=3)


class TestReliableBaselineAgreement:
    """The reliable baseline itself is backend- and index-invariant."""

    def test_serial_bdd_matches(self, fig2a_baseline):
        _runner, prints, _invs = fig2a_scenario(predicate_index="bdd")
        assert prints == fig2a_baseline

    def test_process_backend_matches(self, fig2a_baseline):
        runner, prints, _invs = fig2a_scenario(backend="process")
        runner.close()
        assert prints == fig2a_baseline


class TestFig2aChaosParity:
    @pytest.mark.parametrize("seed", range(16))
    def test_verdict_and_region_parity(self, fig2a_baseline, seed):
        # Alternate the predicate-index mode across the seed sweep so both
        # region algebras face every fault regime.
        mode = "atoms" if seed % 2 == 0 else "bdd"
        config = chaos_for(seed)
        runner, prints, _invs = fig2a_scenario(
            chaos=config, predicate_index=mode
        )
        assert runner.network.converged
        assert runner.statuses() == {
            "reach_S_D": "HOLDS",
            "waypoint_S_W_D": "VIOLATED",
        }
        _record("fig2a", seed, config, runner, runner.network.last_activity)
        assert prints == fig2a_baseline, f"seed={seed} mode={mode}"

    @pytest.mark.parametrize("seed", [2, 5, 11, 14])
    def test_broken_plane_violation_regions(self, fig2a_broken_baseline, seed):
        config = chaos_for(seed)
        runner, prints, _invs = fig2a_scenario(
            chaos=config, break_plane=True,
            predicate_index="atoms" if seed % 2 else "bdd",
        )
        assert runner.network.converged
        assert prints == fig2a_broken_baseline, f"seed={seed}"


# ----------------------------------------------------------------------
# Fattree: burst + link churn
# ----------------------------------------------------------------------
def ft4_scenario(ds, chaos=None, predicate_index="atoms", transport_config=None):
    runner = TulkunRunner(
        ds.topology,
        ds.ctx,
        ds.invariants,
        cpu_scale=0.0,
        predicate_index=predicate_index,
        chaos=chaos,
        transport_config=transport_config,
    )
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in dev_rules]
        for dev, dev_rules in ds.rules_by_device.items()
    }
    runner.burst_update(rules)
    link = next(iter(ds.topology.links()))
    runner.fail_links([(link.a, link.b)])
    runner.recover_links([(link.a, link.b)])
    return runner, fingerprints(runner, ds.invariants)


@pytest.fixture(scope="module")
def ft4_baseline(ft4):
    _runner, prints = ft4_scenario(ft4)
    return prints


class TestFattreeChaosParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_burst_and_churn_parity(self, ft4, ft4_baseline, seed):
        mode = "atoms" if seed % 2 == 0 else "bdd"
        config = chaos_for(seed)
        runner, prints = ft4_scenario(ft4, chaos=config, predicate_index=mode)
        assert runner.network.converged
        _record("FT-4", seed, config, runner, runner.network.last_activity)
        assert prints == ft4_baseline, f"seed={seed} mode={mode}"


# ----------------------------------------------------------------------
# Crash/restart under chaos
# ----------------------------------------------------------------------
class TestCrashRestartConvergence:
    @pytest.mark.parametrize("seed", [0, 3, 6])
    def test_restart_resyncs_to_baseline(self, fig2a_baseline, seed):
        config = chaos_for(seed)
        runner, _prints, invariants = fig2a_scenario(chaos=config)
        runner.crash_device("B")
        runner.restart_device("B")
        assert runner.network.converged
        assert fingerprints(runner, invariants) == fig2a_baseline

    def test_reliable_mode_crash_restart(self, fig2a_baseline):
        runner, _prints, invariants = fig2a_scenario()
        runner.crash_device("W")
        runner.restart_device("W")
        assert fingerprints(runner, invariants) == fig2a_baseline


# ----------------------------------------------------------------------
# Partition: graceful degradation, not a hang
# ----------------------------------------------------------------------
class TestPartitionDegradation:
    def test_partition_reports_unknown_within_budget(self):
        runner, _prints, _invs = fig2a_scenario(
            chaos=ChaosConfig(seed=1, p_loss=0.1),
            transport_config=TransportConfig(max_retries=4),
        )
        runner.fail_links([("S", "A")])
        victim = runner.network.devices["A"].plane.rules[0]
        runner.incremental_updates(
            [
                (
                    "A",
                    Rule(victim.match, Action.drop(), victim.priority),
                    victim.rule_id,
                ),
            ]
        )
        statuses = runner.statuses()
        assert statuses == {
            "reach_S_D": "UNKNOWN(unreachable_upstream)",
            "waypoint_S_W_D": "UNKNOWN(unreachable_upstream)",
        }
        assert not runner.network.converged
        # Bounded: retransmission gave up instead of spinning the kernel.
        assert runner.network.kernel.events_processed < 50_000
        assert runner.network.transport.quiescent()

    def test_recovery_after_partition_clears_unknown(self):
        runner, _prints, _invs = fig2a_scenario(
            chaos=ChaosConfig(seed=1, p_loss=0.1),
            transport_config=TransportConfig(max_retries=4),
        )
        runner.fail_links([("S", "A")])
        victim = runner.network.devices["A"].plane.rules[0]
        runner.incremental_updates(
            [
                (
                    "A",
                    Rule(victim.match, Action.drop(), victim.priority),
                    victim.rule_id,
                ),
            ]
        )
        assert "UNKNOWN(unreachable_upstream)" in runner.statuses().values()
        runner.recover_links([("S", "A")])
        restored = runner.network.devices["A"].plane.rules[0]
        runner.incremental_updates(
            [
                (
                    "A",
                    Rule(restored.match, victim.action, restored.priority),
                    restored.rule_id,
                ),
            ]
        )
        statuses = runner.statuses()
        assert "UNKNOWN(unreachable_upstream)" not in statuses.values()
        assert runner.network.converged


# ----------------------------------------------------------------------
# High-loss regime (slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestHighLoss:
    @pytest.mark.parametrize("seed", range(4))
    def test_fig2a_half_loss(self, fig2a_baseline, seed):
        config = ChaosConfig(
            seed=100 + seed, p_loss=0.5, p_dup=0.2, p_reorder=0.3
        )
        runner, prints, _invs = fig2a_scenario(
            chaos=config,
            predicate_index="atoms" if seed % 2 == 0 else "bdd",
            transport_config=TransportConfig(max_retries=25),
        )
        assert runner.network.converged
        _record("fig2a", 100 + seed, config, runner, runner.network.last_activity)
        assert prints == fig2a_baseline, f"seed={seed}"

    @pytest.mark.parametrize("seed", range(2))
    def test_fattree_half_loss(self, ft4, ft4_baseline, seed):
        config = ChaosConfig(seed=200 + seed, p_loss=0.5, p_dup=0.1, p_reorder=0.2)
        runner, prints = ft4_scenario(
            ft4, chaos=config,
            transport_config=TransportConfig(max_retries=25),
        )
        assert runner.network.converged
        assert prints == ft4_baseline, f"seed={seed}"
