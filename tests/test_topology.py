"""Topology model, generators and the WAN zoo."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Topology,
    WAN_BUILDERS,
    canonical_link,
    clos,
    clos3,
    fattree,
    fig2a_example,
    grid,
    inet2,
    line,
    random_wan,
    ring,
    star,
    stanford,
)


class TestGraphBasics:
    def test_add_and_query(self):
        topo = Topology("t")
        topo.add_link("a", "b", 0.5)
        assert topo.has_link("a", "b") and topo.has_link("b", "a")
        assert topo.latency("a", "b") == 0.5
        assert topo.neighbors("a") == ["b"]
        assert topo.num_devices == 2
        assert topo.num_links == 1

    def test_self_loop_rejected(self):
        topo = Topology("t")
        with pytest.raises(TopologyError):
            topo.add_link("a", "a")

    def test_negative_latency_rejected(self):
        topo = Topology("t")
        with pytest.raises(TopologyError):
            topo.add_link("a", "b", -1)

    def test_unknown_device_queries(self):
        topo = Topology("t")
        with pytest.raises(TopologyError):
            topo.neighbors("missing")
        with pytest.raises(TopologyError):
            topo.hop_distances_to("missing")

    def test_canonical_link(self):
        assert canonical_link("b", "a") == ("a", "b")
        assert canonical_link("a", "b") == ("a", "b")

    def test_links_iteration(self):
        topo = ring(4)
        links = list(topo.links())
        assert len(links) == 4
        assert all(link.a <= link.b for link in links)

    def test_attach_prefix_unknown_device(self):
        topo = Topology("t")
        with pytest.raises(TopologyError):
            topo.attach_prefix("missing", "10.0.0.0/24")

    def test_prefix_owner(self):
        topo = fig2a_example()
        assert topo.prefix_owner("10.0.0.0/23") == "D"
        assert topo.prefix_owner("99.0.0.0/8") is None


class TestDistances:
    def test_hop_distances(self):
        topo = line(5)
        distances = topo.hop_distances_to("d4")
        assert distances["d0"] == 4
        assert distances["d4"] == 0

    def test_shortest_hops_disconnected(self):
        topo = Topology("t")
        topo.add_device("x")
        topo.add_device("y")
        assert topo.shortest_hops("x", "y") is None

    def test_latency_distances(self):
        topo = Topology("t")
        topo.add_link("a", "b", 1.0)
        topo.add_link("b", "c", 1.0)
        topo.add_link("a", "c", 5.0)
        dist = topo.latency_distances_from("a")
        assert dist["c"] == 2.0  # via b, not the direct 5.0 link

    def test_diameter(self):
        assert line(6).diameter_hops() == 5
        assert star(5).diameter_hops() == 2

    def test_is_connected(self):
        topo = line(3)
        assert topo.is_connected()
        topo.add_device("isolated")
        assert not topo.is_connected()


class TestDerivedGraphs:
    def test_without_links(self):
        topo = ring(4)
        cut = topo.without_links([("d0", "d1")])
        assert not cut.has_link("d0", "d1")
        assert cut.num_links == 3
        assert topo.num_links == 4  # original untouched

    def test_without_links_preserves_prefixes(self):
        topo = fig2a_example()
        cut = topo.without_links([("S", "A")])
        assert cut.external_prefixes == topo.external_prefixes

    def test_with_virtual_device(self):
        topo = fig2a_example()
        extended = topo.with_virtual_device("V", ["S", "B"])
        assert extended.has_link("V", "S")
        assert extended.has_link("V", "B")
        assert not topo.has_device("V")
        with pytest.raises(TopologyError):
            extended.with_virtual_device("V", ["S"])


class TestGenerators:
    def test_fig2a_shape(self):
        topo = fig2a_example()
        assert topo.num_devices == 5
        assert topo.num_links == 6
        assert sorted(topo.devices) == ["A", "B", "D", "S", "W"]

    def test_fattree_counts(self):
        k = 4
        topo = fattree(k)
        # 5k^2/4 switches for a k-ary fattree.
        assert topo.num_devices == 5 * k * k // 4
        # Each pod: (k/2)^2 agg-edge links; each agg: k/2 core links.
        assert topo.num_links == k * (k // 2) ** 2 + k * (k // 2) * (k // 2)
        assert len(topo.external_prefixes) == k * k // 2  # one per edge switch

    def test_fattree_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fattree(3)

    def test_fattree_diameter(self):
        assert fattree(4).diameter_hops() == 4

    def test_clos(self):
        topo = clos(4, 8)
        assert topo.num_devices == 12
        assert topo.num_links == 32

    def test_clos3(self):
        topo = clos3(2, 3, 2, 4)
        assert topo.num_devices == 2 + 3 * (2 + 4)
        assert topo.is_connected()

    def test_grid(self):
        topo = grid(3, 4)
        assert topo.num_devices == 12
        assert topo.num_links == 3 * 3 + 2 * 4

    def test_random_wan_deterministic(self):
        a = random_wan(20, 10, seed=5)
        b = random_wan(20, 10, seed=5)
        assert a.link_set() == b.link_set()
        assert a.is_connected()

    def test_ring_min_size(self):
        with pytest.raises(TopologyError):
            ring(2)


class TestZoo:
    def test_inet2_shape(self):
        topo = inet2()
        assert topo.num_devices == 9
        assert topo.is_connected()

    def test_stanford_shape(self):
        topo = stanford()
        assert topo.num_devices == 16
        assert topo.is_connected()

    def test_pairwise_identical_topologies(self):
        at1a = WAN_BUILDERS["AT1-1"]()
        at1b = WAN_BUILDERS["AT1-2"]()
        assert at1a.link_set() == at1b.link_set()

    @pytest.mark.parametrize("name", sorted(WAN_BUILDERS))
    def test_all_zoo_networks_connected(self, name):
        topo = WAN_BUILDERS[name]()
        assert topo.is_connected()
        assert topo.num_devices >= 9
