"""Trace/universe reference semantics against the paper's §2.1 examples."""

import pytest

from repro.dataplane import (
    Action,
    DevicePlane,
    Rule,
    Trace,
    TraceStatus,
    Transform,
    count_matching_traces,
    enumerate_universes,
)
from repro.automata import compile_regex, parse_regex
from repro.errors import DataPlaneError
from tests.conftest import packet


class TestPaperExamples:
    def test_packet_p_single_universe_two_traces(self, fig2_planes):
        """Fig. 2a: p (dst 10.0.0.0/24) has 1 universe of 2 traces."""
        universes = enumerate_universes(fig2_planes, "S", packet("10.0.0.1"))
        assert len(universes) == 1
        (universe,) = universes
        paths = sorted(tuple(t.path) for t in universe)
        assert paths == [("S", "A", "B"), ("S", "A", "W", "D")]
        by_path = {tuple(t.path): t.status for t in universe}
        assert by_path[("S", "A", "B")] is TraceStatus.DROPPED
        assert by_path[("S", "A", "W", "D")] is TraceStatus.DELIVERED

    def test_packet_q_two_universes(self, fig2_planes):
        """Fig. 2a: q (dst 10.0.1.0:80) has 2 universes of 1 trace each."""
        universes = enumerate_universes(fig2_planes, "S", packet("10.0.1.1", 80))
        assert len(universes) == 2
        all_paths = sorted(
            tuple(t.path) for uni in universes for t in uni
        )
        assert all_paths == [("S", "A", "B", "D"), ("S", "A", "W", "D")]

    def test_unknown_ingress(self, fig2_planes):
        with pytest.raises(DataPlaneError):
            enumerate_universes(fig2_planes, "Z", packet("10.0.0.1"))


class TestLoopsAndDrops:
    def _looping_planes(self, ctx):
        planes = {name: DevicePlane(name, ctx) for name in "AB"}
        space = ctx.ip_prefix("10.0.0.0/8")
        planes["A"].install_many([Rule(space, Action.forward_all(["B"]), 1)])
        planes["B"].install_many([Rule(space, Action.forward_all(["A"]), 1)])
        return planes

    def test_loop_detected(self, ctx):
        planes = self._looping_planes(ctx)
        universes = enumerate_universes(planes, "A", packet("10.1.1.1"), max_hops=6)
        (universe,) = universes
        (trace,) = list(universe)
        assert trace.status is TraceStatus.LOOPING
        assert len(trace.path) == 7

    def test_missing_device_is_drop(self, ctx):
        planes = {"A": DevicePlane("A", ctx)}
        planes["A"].install_many(
            [Rule(ctx.universe, Action.forward_all(["GHOST"]), 1)]
        )
        universes = enumerate_universes(planes, "A", packet("10.0.0.1"))
        (universe,) = universes
        (trace,) = list(universe)
        assert trace.status is TraceStatus.DROPPED
        assert trace.path == ("A", "GHOST")


class TestTransforms:
    def test_transform_changes_downstream_matching(self, ctx):
        """A rewrites dst_port 80→8080; B forwards 8080 only."""
        planes = {name: DevicePlane(name, ctx) for name in "ABC"}
        p80 = ctx.value("dst_port", 80)
        p8080 = ctx.value("dst_port", 8080)
        planes["A"].install_many(
            [
                Rule(
                    p80,
                    Action.forward_all(["B"], transform=Transform.set_fields(dst_port=8080)),
                    10,
                )
            ]
        )
        planes["B"].install_many([Rule(p8080, Action.forward_all(["C"]), 10)])
        planes["C"].install_many([Rule(p8080, Action.deliver(), 10)])
        universes = enumerate_universes(planes, "A", packet("10.0.0.1", 80))
        (universe,) = universes
        (trace,) = list(universe)
        assert trace.status is TraceStatus.DELIVERED
        assert trace.path == ("A", "B", "C")

    def test_without_transform_same_packet_drops(self, ctx):
        planes = {name: DevicePlane(name, ctx) for name in "AB"}
        planes["A"].install_many(
            [Rule(ctx.value("dst_port", 80), Action.forward_all(["B"]), 10)]
        )
        planes["B"].install_many(
            [Rule(ctx.value("dst_port", 8080), Action.deliver(), 10)]
        )
        universes = enumerate_universes(planes, "A", packet("10.0.0.1", 80))
        (universe,) = universes
        (trace,) = list(universe)
        assert trace.status is TraceStatus.DROPPED


class TestCountMatching:
    def test_counts_match_fig2(self, fig2_planes, fig2a):
        dfa = compile_regex(parse_regex("S .* W .* D"), fig2a.devices)
        q_universes = enumerate_universes(fig2_planes, "S", packet("10.0.1.1", 80))
        assert count_matching_traces(q_universes, dfa.accepts) == [0, 1]
        p_universes = enumerate_universes(fig2_planes, "S", packet("10.0.0.1"))
        assert count_matching_traces(p_universes, dfa.accepts) == [1]

    def test_require_delivery_excludes_drops(self, fig2_planes, fig2a):
        dfa = compile_regex(parse_regex("S .*"), fig2a.devices)
        universes = enumerate_universes(fig2_planes, "S", packet("10.0.0.1"))
        with_delivery = count_matching_traces(universes, dfa.accepts)
        without = count_matching_traces(universes, dfa.accepts, require_delivery=False)
        assert with_delivery == [1]
        assert without == [2]


class TestMulticastSemantics:
    def test_all_type_forks_within_universe(self, ctx):
        planes = {name: DevicePlane(name, ctx) for name in "SAB"}
        space = ctx.ip_prefix("10.0.0.0/8")
        planes["S"].install_many([Rule(space, Action.forward_all(["A", "B"]), 1)])
        planes["A"].install_many([Rule(space, Action.deliver(), 1)])
        planes["B"].install_many([Rule(space, Action.deliver(), 1)])
        universes = enumerate_universes(planes, "S", packet("10.1.1.1"))
        assert len(universes) == 1
        assert len(universes[0]) == 2

    def test_any_type_forks_universes(self, ctx):
        planes = {name: DevicePlane(name, ctx) for name in "SAB"}
        space = ctx.ip_prefix("10.0.0.0/8")
        planes["S"].install_many([Rule(space, Action.forward_any(["A", "B"]), 1)])
        planes["A"].install_many([Rule(space, Action.deliver(), 1)])
        planes["B"].install_many([Rule(space, Action.deliver(), 1)])
        universes = enumerate_universes(planes, "S", packet("10.1.1.1"))
        assert len(universes) == 2
        assert all(len(u) == 1 for u in universes)
