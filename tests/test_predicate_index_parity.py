"""Predicate-index parity: ``atoms`` vs ``bdd`` must be byte-identical.

The atom index is a pure representation change — all DVM wire messages,
verdict flags, canonical source-node counting results and violation regions
must match the raw-BDD path byte for byte, with engine GC armed, on both
execution backends, through burst convergence, link churn and incremental
rule updates.  This is the acceptance gate that lets ``atoms`` be the
default without perturbing any seed behaviour.
"""

import ipaddress
import random

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Action, Rule
from repro.datasets import build_dataset
from repro.sim import TulkunRunner, apply_intents, random_update_intents
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes
from tests.test_parallel_backend import (
    serial_fingerprints,
    verdict_flags,
    violation_fingerprints,
)

GC_THRESHOLD = 64


def fig2_outcome(predicate_index, *, break_plane=False):
    """Burst + link churn + one incremental update on the §2 example."""
    ctx = PacketSpaceContext()
    topology = fig2a_example()
    p1 = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        reachability(p1, "S", "D"),
        waypoint_reachability(p1, "S", "W", "D"),
    ]
    planes = build_fig2_planes(ctx)
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    if break_plane:
        # Blackhole W's forwarding: waypointed traffic dies at the waypoint.
        rules["W"] = [
            Rule(r.match, Action.drop(), r.priority) for r in rules["W"]
        ]
    runner = TulkunRunner(
        topology, ctx, invariants,
        gc_threshold=GC_THRESHOLD, predicate_index=predicate_index,
    )
    result = runner.burst_update(rules)
    runner.fail_links([("A", "W")])
    runner.recover_links([("A", "W")])
    # One single-rule update after convergence: re-point S, then restore.
    plane = runner.network.devices["S"].plane
    victim = plane.rules[0]
    runner.incremental_updates(
        [
            ("S", Rule(victim.match, Action.forward_all(["B"]),
                       victim.priority), victim.rule_id),
        ]
    )
    return (
        result.holds,
        verdict_flags(runner.network, invariants),
        violation_fingerprints(runner.network, invariants),
        serial_fingerprints(runner),
        ctx.mgr.stats.gc_runs,
    )


class TestFig2aParity:
    def test_serial_byte_identical(self):
        holds_a, flags_a, viol_a, prints_a, gc_a = fig2_outcome("atoms")
        holds_b, flags_b, viol_b, prints_b, gc_b = fig2_outcome("bdd")
        assert gc_a > 0 and gc_b > 0, "GC never armed: parity gate is void"
        assert holds_a == holds_b
        assert flags_a == flags_b
        assert viol_a == viol_b
        assert prints_a == prints_b

    def test_broken_plane_same_violation_bytes(self):
        holds_a, flags_a, viol_a, prints_a, _ = fig2_outcome(
            "atoms", break_plane=True
        )
        holds_b, flags_b, viol_b, prints_b, _ = fig2_outcome(
            "bdd", break_plane=True
        )
        assert not all(all(v.values()) for v in flags_a.values())
        assert holds_a == holds_b
        assert flags_a == flags_b
        assert viol_a == viol_b
        assert prints_a == prints_b


class TestBitsetAlgebraProperty:
    """Seeded random-rule workloads: packed-bitset AtomSet algebra must
    agree with raw Predicate (BDD) semantics operation for operation,
    through interleaved refinement, merge-on-collect and engine GC."""

    @staticmethod
    def random_prefix_preds(ctx, rng, count):
        preds = []
        for _ in range(count):
            plen = rng.randint(6, 28)
            net = ipaddress.ip_network((rng.getrandbits(32), plen), strict=False)
            preds.append(ctx.ip_prefix(str(net)))
        return preds

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_algebra_agrees_with_bdd(self, seed):
        rng = random.Random(seed)
        ctx = PacketSpaceContext()
        index = ctx.atom_index()
        preds = self.random_prefix_preds(ctx, rng, 24)
        # Derived regions diversify beyond pure prefixes (unions and
        # carve-outs are what CIB entries actually look like).
        for _ in range(12):
            a, b = rng.sample(preds, 2)
            preds.append((a | b) if rng.random() < 0.5 else (a - b))
        sets = [index.atomize(p) for p in preds]
        live = list(zip(preds, sets))
        for step in range(150):
            (pa, sa), (pb, sb) = rng.sample(live, 2)
            assert (sa & sb).to_predicate() == pa & pb
            assert (sa | sb).to_predicate() == pa | pb
            assert (sa - sb).to_predicate() == pa - pb
            assert (sa ^ sb).to_predicate() == (pa | pb) - (pa & pb)
            assert sa.covers(sb) == pa.covers(pb)
            assert sa.overlaps(sb) == (not (pa & pb).is_empty)
            assert (sa - sb).is_empty == (pa - pb).is_empty
            if step % 10 == 9:
                # Refine mid-stream: all live masks go stale and must
                # renormalize through the rewrite tables.
                extra = self.random_prefix_preds(ctx, rng, 1)[0]
                live.append((extra, index.atomize(extra)))
            if step % 40 == 39:
                # Shrink the live set, merge-on-collect, then sweep the
                # engine: conversions must survive both.
                live = rng.sample(live, max(8, len(live) // 2))
                import gc as pygc

                pygc.collect()
                index.compact()
                ctx.mgr.collect()
                for pred, aset in rng.sample(live, 4):
                    assert aset.to_predicate() == pred

    @pytest.mark.parametrize("seed", [3, 11])
    def test_sets_stay_valid_dict_keys(self, seed):
        """Hash/equality survive splits and merges: a CIB keyed by AtomSet
        must still find its entries after arbitrary refinement."""
        rng = random.Random(seed)
        ctx = PacketSpaceContext()
        index = ctx.atom_index()
        preds = self.random_prefix_preds(ctx, rng, 16)
        table = {index.atomize(p): i for i, p in enumerate(preds)}
        self.random_prefix_preds(ctx, rng, 16)  # refine under the keys
        index.compact()
        for i, p in enumerate(preds):
            hits = [v for aset, v in table.items() if aset == index.atomize(p)]
            assert i in hits


def fattree_outcome(predicate_index, backend, workers=2, use_shm=True):
    ds = build_dataset("FT-4", pair_limit=6, seed=3)
    kwargs = {
        "gc_threshold": GC_THRESHOLD, "predicate_index": predicate_index,
        "backend": backend,
    }
    if backend == "process":
        kwargs["workers"] = workers
        kwargs["use_shm"] = use_shm
    runner = TulkunRunner(ds.topology, ds.ctx, ds.invariants, **kwargs)
    try:
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in rules]
            for dev, rules in ds.rules_by_device.items()
        }
        result = runner.burst_update(rules)
        planes = {
            dev: runner.network.devices[dev].plane
            for dev in ds.topology.devices
        }
        intents = random_update_intents(ds.topology, planes, 6, seed=11)
        apply_intents(runner, intents)
        flags = verdict_flags(runner.network, ds.invariants)
        viol = violation_fingerprints(runner.network, ds.invariants)
        if backend == "process":
            prints = runner.network.source_fingerprints()
        else:
            prints = serial_fingerprints(runner)
        return result.holds, flags, viol, prints
    finally:
        runner.close()


class TestFattreeParity:
    def test_serial_byte_identical(self):
        atoms = fattree_outcome("atoms", "serial")
        bdd = fattree_outcome("bdd", "serial")
        assert atoms == bdd

    def test_process_byte_identical(self):
        atoms = fattree_outcome("atoms", "process")
        bdd = fattree_outcome("bdd", "process")
        assert atoms == bdd

    def test_backends_agree_in_atoms_mode(self):
        serial = fattree_outcome("atoms", "serial")
        process = fattree_outcome("atoms", "process")
        assert serial == process

    def test_pipe_transport_byte_identical(self):
        """Same gate with shm frame shipping disabled: the pickled-pipe
        path must carry the exact same regions and counts."""
        atoms = fattree_outcome("atoms", "process", use_shm=False)
        bdd = fattree_outcome("bdd", "process", use_shm=False)
        assert atoms == bdd

    def test_shm_and_pipe_agree_in_atoms_mode(self):
        shm = fattree_outcome("atoms", "process", use_shm=True)
        pipe = fattree_outcome("atoms", "process", use_shm=False)
        assert shm == pipe


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        ds_ctx = PacketSpaceContext()
        with pytest.raises(ValueError):
            TulkunRunner(
                fig2a_example(), ds_ctx, [], predicate_index="wat"
            )
