"""Predicate-index parity: ``atoms`` vs ``bdd`` must be byte-identical.

The atom index is a pure representation change — all DVM wire messages,
verdict flags, canonical source-node counting results and violation regions
must match the raw-BDD path byte for byte, with engine GC armed, on both
execution backends, through burst convergence, link churn and incremental
rule updates.  This is the acceptance gate that lets ``atoms`` be the
default without perturbing any seed behaviour.
"""

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Action, Rule
from repro.datasets import build_dataset
from repro.sim import TulkunRunner, apply_intents, random_update_intents
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes
from tests.test_parallel_backend import (
    serial_fingerprints,
    verdict_flags,
    violation_fingerprints,
)

GC_THRESHOLD = 64


def fig2_outcome(predicate_index, *, break_plane=False):
    """Burst + link churn + one incremental update on the §2 example."""
    ctx = PacketSpaceContext()
    topology = fig2a_example()
    p1 = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        reachability(p1, "S", "D"),
        waypoint_reachability(p1, "S", "W", "D"),
    ]
    planes = build_fig2_planes(ctx)
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    if break_plane:
        # Blackhole W's forwarding: waypointed traffic dies at the waypoint.
        rules["W"] = [
            Rule(r.match, Action.drop(), r.priority) for r in rules["W"]
        ]
    runner = TulkunRunner(
        topology, ctx, invariants,
        gc_threshold=GC_THRESHOLD, predicate_index=predicate_index,
    )
    result = runner.burst_update(rules)
    runner.fail_links([("A", "W")])
    runner.recover_links([("A", "W")])
    # One single-rule update after convergence: re-point S, then restore.
    plane = runner.network.devices["S"].plane
    victim = plane.rules[0]
    runner.incremental_updates(
        [
            ("S", Rule(victim.match, Action.forward_all(["B"]),
                       victim.priority), victim.rule_id),
        ]
    )
    return (
        result.holds,
        verdict_flags(runner.network, invariants),
        violation_fingerprints(runner.network, invariants),
        serial_fingerprints(runner),
        ctx.mgr.stats.gc_runs,
    )


class TestFig2aParity:
    def test_serial_byte_identical(self):
        holds_a, flags_a, viol_a, prints_a, gc_a = fig2_outcome("atoms")
        holds_b, flags_b, viol_b, prints_b, gc_b = fig2_outcome("bdd")
        assert gc_a > 0 and gc_b > 0, "GC never armed: parity gate is void"
        assert holds_a == holds_b
        assert flags_a == flags_b
        assert viol_a == viol_b
        assert prints_a == prints_b

    def test_broken_plane_same_violation_bytes(self):
        holds_a, flags_a, viol_a, prints_a, _ = fig2_outcome(
            "atoms", break_plane=True
        )
        holds_b, flags_b, viol_b, prints_b, _ = fig2_outcome(
            "bdd", break_plane=True
        )
        assert not all(all(v.values()) for v in flags_a.values())
        assert holds_a == holds_b
        assert flags_a == flags_b
        assert viol_a == viol_b
        assert prints_a == prints_b


def fattree_outcome(predicate_index, backend, workers=2):
    ds = build_dataset("FT-4", pair_limit=6, seed=3)
    kwargs = {
        "gc_threshold": GC_THRESHOLD, "predicate_index": predicate_index,
        "backend": backend,
    }
    if backend == "process":
        kwargs["workers"] = workers
    runner = TulkunRunner(ds.topology, ds.ctx, ds.invariants, **kwargs)
    try:
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in rules]
            for dev, rules in ds.rules_by_device.items()
        }
        result = runner.burst_update(rules)
        planes = {
            dev: runner.network.devices[dev].plane
            for dev in ds.topology.devices
        }
        intents = random_update_intents(ds.topology, planes, 6, seed=11)
        apply_intents(runner, intents)
        flags = verdict_flags(runner.network, ds.invariants)
        viol = violation_fingerprints(runner.network, ds.invariants)
        if backend == "process":
            prints = runner.network.source_fingerprints()
        else:
            prints = serial_fingerprints(runner)
        return result.holds, flags, viol, prints
    finally:
        runner.close()


class TestFattreeParity:
    def test_serial_byte_identical(self):
        atoms = fattree_outcome("atoms", "serial")
        bdd = fattree_outcome("bdd", "serial")
        assert atoms == bdd

    def test_process_byte_identical(self):
        atoms = fattree_outcome("atoms", "process")
        bdd = fattree_outcome("bdd", "process")
        assert atoms == bdd

    def test_backends_agree_in_atoms_mode(self):
        serial = fattree_outcome("atoms", "serial")
        process = fattree_outcome("atoms", "process")
        assert serial == process


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        ds_ctx = PacketSpaceContext()
        with pytest.raises(ValueError):
            TulkunRunner(
                fig2a_example(), ds_ctx, [], predicate_index="wat"
            )
