"""Randomized algebraic properties of the BDD layer.

Boolean-algebra laws (involution, De Morgan), Shannon/``ite`` consistency,
model counting's inclusion–exclusion, and serialize→deserialize round-trips,
all over a fixed-seed stream of random predicates — the canonical-form
guarantees everything else in the system (PredMaps, the DVM wire format, the
parallel backend's byte-level parity) silently relies on.
"""

import random

import pytest

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.bdd.serialize import (
    deserialize_predicate,
    deserialize_predicates,
    serialize_predicate,
    serialize_predicates,
)

SEED = 20230817
NUM_CASES = 40


@pytest.fixture(scope="module")
def ctx():
    return PacketSpaceContext(HeaderLayout.dst_only())


def random_predicate(ctx, rng, depth=3):
    """A random predicate built from prefixes, values and connectives."""
    if depth == 0 or rng.random() < 0.3:
        kind = rng.randrange(4)
        if kind == 0:
            return ctx.ip_prefix(
                f"{rng.randrange(256)}.{rng.randrange(256)}.0.0/"
                f"{rng.randrange(1, 17)}"
            )
        if kind == 1:
            return ctx.value("dst_ip", rng.randrange(1 << 32))
        if kind == 2:
            return ctx.empty
        return ctx.universe
    a = random_predicate(ctx, rng, depth - 1)
    b = random_predicate(ctx, rng, depth - 1)
    op = rng.randrange(4)
    if op == 0:
        return a & b
    if op == 1:
        return a | b
    if op == 2:
        return a - b
    return ~a


def cases(ctx, arity):
    rng = random.Random(SEED)
    out = []
    for _ in range(NUM_CASES):
        out.append(tuple(random_predicate(ctx, rng) for _ in range(arity)))
    return out


class TestBooleanLaws:
    def test_negation_involution(self, ctx):
        for (a,) in cases(ctx, 1):
            assert ~~a == a

    def test_de_morgan(self, ctx):
        for a, b in cases(ctx, 2):
            assert ~(a & b) == (~a | ~b)
            assert ~(a | b) == (~a & ~b)

    def test_difference_is_and_not(self, ctx):
        for a, b in cases(ctx, 2):
            assert (a - b) == (a & ~b)

    def test_xor_definition(self, ctx):
        for a, b in cases(ctx, 2):
            assert (a ^ b) == ((a | b) - (a & b))

    def test_absorption_and_complement(self, ctx):
        for a, b in cases(ctx, 2):
            assert (a & (a | b)) == a
            assert (a | (a & b)) == a
            assert (a | ~a).is_universe
            assert (a & ~a).is_empty


class TestIte:
    def test_ite_shannon_consistency(self, ctx):
        """ite(f, g, h) == (f & g) | (~f & h), for random triples."""
        mgr = ctx.mgr
        rng = random.Random(SEED + 1)
        for _ in range(NUM_CASES):
            f, g, h = (random_predicate(ctx, rng) for _ in range(3))
            via_ite = ctx.wrap(mgr.ite(f.node, g.node, h.node))
            composed = (f & g) | (~f & h)
            assert via_ite == composed

    def test_ite_projections(self, ctx):
        mgr = ctx.mgr
        rng = random.Random(SEED + 2)
        for _ in range(NUM_CASES):
            g, h = (random_predicate(ctx, rng) for _ in range(2))
            assert ctx.wrap(mgr.ite(ctx.universe.node, g.node, h.node)) == g
            assert ctx.wrap(mgr.ite(ctx.empty.node, g.node, h.node)) == h


class TestModelCounting:
    def test_inclusion_exclusion(self, ctx):
        for a, b in cases(ctx, 2):
            assert (a | b).count() == (
                a.count() + b.count() - (a & b).count()
            )

    def test_complement_counts(self, ctx):
        total = ctx.universe.count()
        for (a,) in cases(ctx, 1):
            assert a.count() + (~a).count() == total


class TestSerializeRoundTrip:
    def test_single_predicate_round_trip(self, ctx):
        for (a,) in cases(ctx, 1):
            data = serialize_predicate(a)
            assert deserialize_predicate(ctx, data) == a

    def test_round_trip_across_contexts_is_canonical(self, ctx):
        """Same boolean function → same bytes, even via a fresh manager."""
        other = PacketSpaceContext(HeaderLayout.dst_only())
        for (a,) in cases(ctx, 1):
            data = serialize_predicate(a)
            moved = deserialize_predicate(other, data)
            assert serialize_predicate(moved) == data

    def test_batch_round_trip_preserves_order_and_values(self, ctx):
        rng = random.Random(SEED + 3)
        batch = [random_predicate(ctx, rng) for _ in range(17)]
        data = serialize_predicates(batch)
        rebuilt = deserialize_predicates(ctx, data)
        assert rebuilt == batch

    def test_batch_shares_nodes(self, ctx):
        """The multi-root stream stores the shared DAG once: serializing a
        predicate twice in one batch costs two root indices, not two DAGs."""
        rng = random.Random(SEED + 4)
        pred = random_predicate(ctx, rng)
        once = len(serialize_predicates([pred]))
        twice = len(serialize_predicates([pred, pred]))
        assert twice - once <= 5  # one extra varint root index

    def test_empty_batch(self, ctx):
        assert deserialize_predicates(ctx, serialize_predicates([])) == []
