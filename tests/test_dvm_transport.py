"""Unit tests for the DVM transport state machine (``sim/transport.py``).

These drive :class:`DvmTransport` against a minimal fake network and a
scripted channel so each mechanism — timeout retransmission, exponential
backoff, ack/data deduplication, reorder buffering, give-up — is exercised
in isolation with exact timing assertions.  The crash/restart tests at the
bottom use the real fig2a simulator to check the end-to-end resubscription
path replays the full CIB.
"""

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Rule
from repro.sim import (
    ChaosConfig,
    Channel,
    DvmTransport,
    FaultyChannel,
    MetricsCollector,
    SimKernel,
    Segment,
    TransportConfig,
    TulkunRunner,
)
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes
from tests.test_parallel_backend import serial_fingerprints, verdict_flags


class ScriptedChannel(Channel):
    """Pops pre-scripted fates per directed link; defaults to clean delivery.

    ``fates[(src, dst)]`` is a list consumed one entry per transmission:
    ``None`` delivers after the link latency, ``[]`` drops, an explicit list
    of delays overrides arrival times (several = duplication).
    """

    def __init__(self, fates=None):
        self.fates = {k: list(v) for k, v in (fates or {}).items()}
        self.log = []

    def transmit(self, src, dst, latency):
        self.log.append((src, dst))
        queue = self.fates.get((src, dst))
        if queue:
            fate = queue.pop(0)
            if fate is None:
                return [latency]
            return list(fate)
        return [latency]


class _FakeTopology:
    def links(self):
        return []


class FakeNetwork:
    """The minimal surface DvmTransport needs: a kernel, metrics, a latency
    oracle, segment scheduling and in-order dispatch recording."""

    def __init__(self, latency=0.25):
        self.kernel = SimKernel()
        self.metrics = MetricsCollector()
        self.topology = _FakeTopology()
        self.latency = latency
        self.delivered = []  # (payload, kernel time at delivery)
        self.transport = None

    def path_latency(self, src, dst):
        return self.latency

    def schedule_segment(self, segment, arrival):
        self.kernel.schedule_at(
            arrival,
            lambda: self.transport.handle_segment(segment, segment.wire_size()),
        )

    def dispatch(self, src, dst, invariant, payload):
        self.delivered.append((payload, self.kernel.now))


def make_transport(channel, latency=0.25, rto=1.0, rto_max=None, max_retries=12):
    # latency < rto/2 so a clean ack round-trip always beats the timer,
    # mirroring the deployed derivation (rto = 4x the slowest link).
    network = FakeNetwork(latency=latency)
    config = TransportConfig(
        rto_initial=rto,
        rto_max=rto_max if rto_max is not None else 64.0 * rto,
        max_retries=max_retries,
    )
    transport = DvmTransport(network, channel, config)
    network.transport = transport
    return network, transport


class TestRetransmission:
    def test_clean_delivery_needs_no_retransmit(self):
        network, transport = make_transport(ScriptedChannel())
        transport.send("A", "B", "inv", "hello", at=0.0, latency=0.25)
        network.kernel.run()
        assert [p for p, _t in network.delivered] == ["hello"]
        assert network.metrics.device("A").retransmits == 0
        assert transport.quiescent()
        assert transport.unacked_segments() == 0

    def test_retransmit_after_timeout(self):
        channel = ScriptedChannel({("A", "B"): [[]]})  # drop first copy
        network, transport = make_transport(channel, rto=1.0)
        transport.send("A", "B", "inv", "msg", at=0.0, latency=0.25)
        network.kernel.run()
        # Timer fires at t=1 (rto), retransmission lands at t=1.25.
        assert network.delivered == [("msg", 1.25)]
        assert network.metrics.device("A").retransmits == 1
        assert transport.quiescent()

    def test_exponential_backoff_schedule(self):
        transport = make_transport(ScriptedChannel(), rto=1.0, rto_max=8.0)[1]
        assert [transport.rto(n) for n in range(6)] == [
            1.0, 2.0, 4.0, 8.0, 8.0, 8.0
        ]

    def test_backoff_cap_governs_retry_timing(self):
        # Drop the first four copies: timeouts fire at 1, 1+2, 3+4 and
        # 7+8 (capped); the fifth transmission at t=15 lands at t=15.25.
        channel = ScriptedChannel({("A", "B"): [[], [], [], []]})
        network, transport = make_transport(channel, rto=1.0, rto_max=8.0)
        transport.send("A", "B", "inv", "msg", at=0.0, latency=0.25)
        network.kernel.run()
        assert network.delivered == [("msg", 15.25)]
        assert network.metrics.device("A").retransmits == 4

    def test_give_up_marks_flow_unreachable(self):
        channel = ScriptedChannel({("A", "B"): [[]] * 10})
        network, transport = make_transport(channel, rto=1.0, max_retries=2)
        transport.send("A", "B", "inv", "msg", at=0.0, latency=0.25)
        network.kernel.run()
        assert network.delivered == []
        assert ("A", "B", "inv") in transport.unreachable
        assert transport.unreachable_invariants() == {"inv"}
        assert network.metrics.device("A").flows_given_up == 1
        assert transport.quiescent()  # dead flows dropped their unacked data
        # Later sends on the dead flow are swallowed, not retried forever.
        transport.send("A", "B", "inv", "more", at=network.kernel.now, latency=0.25)
        network.kernel.run()
        assert network.delivered == []


class TestDeduplication:
    def test_duplicated_ack_is_ignored(self):
        # Deliver DATA once; the single ACK is duplicated on the wire.
        channel = ScriptedChannel({("B", "A"): [[1.0, 1.5]]})
        network, transport = make_transport(channel, rto=10.0)
        transport.send("A", "B", "inv", "msg", at=0.0, latency=0.25)
        network.kernel.run()
        assert [p for p, _t in network.delivered] == ["msg"]
        # First ack copy cleared the pending entry; the second found nothing
        # (the counter lives on the data sender, which observes the dup).
        assert network.metrics.device("A").dup_acks_ignored == 1
        assert transport.quiescent()

    def test_duplicated_data_dispatches_once(self):
        channel = ScriptedChannel({("A", "B"): [[1.0, 1.25]]})
        network, transport = make_transport(channel, rto=10.0)
        transport.send("A", "B", "inv", "msg", at=0.0, latency=0.25)
        network.kernel.run()
        assert [p for p, _t in network.delivered] == ["msg"]
        assert network.metrics.device("B").dup_drops == 1
        # Both copies acked (cumulative), so the sender is clean.
        assert transport.quiescent()

    def test_retransmitted_copy_racing_original_is_dropped(self):
        # Original is delayed past the RTO, so sender retransmits; both
        # copies eventually arrive and exactly one is dispatched.
        channel = ScriptedChannel({("A", "B"): [[3.0]]})
        network, transport = make_transport(channel, rto=1.0)
        transport.send("A", "B", "inv", "msg", at=0.0, latency=0.25)
        network.kernel.run()
        assert [p for p, _t in network.delivered] == ["msg"]
        assert network.metrics.device("A").retransmits == 1
        assert network.metrics.device("B").dup_drops == 1


class TestReorderBuffer:
    def test_flush_preserves_send_order(self):
        # seq 1 held back to t=5; seqs 2 and 3 arrive first and must wait in
        # the buffer, then flush in order behind seq 1.
        channel = ScriptedChannel({("A", "B"): [[5.0], [1.0], [1.0]]})
        network, transport = make_transport(channel, rto=10.0)
        for i, payload in enumerate(["first", "second", "third"]):
            transport.send("A", "B", "inv", payload, at=0.1 * i, latency=0.25)
        network.kernel.run()
        assert [p for p, _t in network.delivered] == ["first", "second", "third"]
        assert network.metrics.device("B").reorder_buffered == 2
        # All three delivered at the moment seq 1 finally arrived.
        assert [t for _p, t in network.delivered] == [5.0, 5.0, 5.0]
        assert transport.quiescent()

    def test_flows_are_independent(self):
        # Reordering on one invariant's flow must not delay another's.
        channel = ScriptedChannel({("A", "B"): [[5.0]]})
        network, transport = make_transport(channel, rto=10.0)
        transport.send("A", "B", "inv1", "slow", at=0.0, latency=0.25)
        transport.send("A", "B", "inv2", "fast", at=0.0, latency=0.25)
        network.kernel.run()
        assert [p for p, _t in network.delivered] == ["fast", "slow"]


class TestFaultyChannelDeterminism:
    def test_same_seed_same_fates(self):
        config = ChaosConfig(seed=7, p_loss=0.3, p_dup=0.3, p_reorder=0.3)
        a, b = FaultyChannel(config), FaultyChannel(config)
        fates_a = [a.transmit("X", "Y", 1.0) for _ in range(50)]
        fates_b = [b.transmit("X", "Y", 1.0) for _ in range(50)]
        assert fates_a == fates_b
        assert a.stats() == b.stats()

    def test_links_draw_independently(self):
        config = ChaosConfig(seed=7, p_loss=0.5)
        channel = FaultyChannel(config)
        xy = [channel.transmit("X", "Y", 1.0) for _ in range(30)]
        yx = [channel.transmit("Y", "X", 1.0) for _ in range(30)]
        assert xy != yx  # directed links have distinct fate streams

    def test_parse_round_trip(self):
        config = ChaosConfig.parse("42,0.1,0.2,0.3")
        assert config == ChaosConfig(seed=42, p_loss=0.1, p_dup=0.2, p_reorder=0.3)
        assert ChaosConfig.parse("5,0.25") == ChaosConfig(seed=5, p_loss=0.25)
        with pytest.raises(ValueError):
            ChaosConfig.parse("42")
        with pytest.raises(ValueError):
            ChaosConfig(p_loss=1.0)
        with pytest.raises(ValueError):
            ChaosConfig(p_dup=1.5)


class TestEpochGuard:
    def test_stale_epoch_segment_discarded(self):
        network, transport = make_transport(ScriptedChannel(), rto=10.0)
        transport.send("A", "B", "inv", "current", at=0.0, latency=0.25)
        network.kernel.run()
        flow = transport.receivers[("A", "B", "inv")]
        stale = Segment("data", "A", "B", "inv", flow.epoch - 1, 99, "ghost")
        transport.handle_segment(stale, stale.wire_size())
        assert [p for p, _t in network.delivered] == ["current"]

    def test_new_epoch_resets_sequence_space(self):
        network, transport = make_transport(ScriptedChannel(), rto=10.0)
        transport.send("A", "B", "inv", "old", at=0.0, latency=0.25)
        network.kernel.run()
        old_flow = transport.receivers[("A", "B", "inv")]
        fresh = Segment(
            "data", "A", "B", "inv", old_flow.epoch + 1, 1, "reborn"
        )
        transport.handle_segment(fresh, fresh.wire_size())
        assert [p for p, _t in network.delivered] == ["old", "reborn"]
        assert old_flow.next_expected == 2


# ----------------------------------------------------------------------
# End-to-end crash/restart resubscription (real simulator)
# ----------------------------------------------------------------------
def _deployed_fig2a(**kwargs):
    ctx = PacketSpaceContext()
    topology = fig2a_example()
    p1 = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        reachability(p1, "S", "D"),
        waypoint_reachability(p1, "S", "W", "D"),
    ]
    runner = TulkunRunner(topology, ctx, invariants, cpu_scale=0.0, **kwargs)
    planes = build_fig2_planes(ctx)
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    runner.burst_update(rules)
    return runner, invariants


class TestCrashRestartResync:
    def test_restart_replays_full_cib(self):
        runner, invariants = _deployed_fig2a()
        baseline = (verdict_flags(runner.network, invariants),
                    serial_fingerprints(runner))
        runner.crash_device("B")
        runner.restart_device("B")
        after = (verdict_flags(runner.network, invariants),
                 serial_fingerprints(runner))
        assert after == baseline
        # The restarted device's verifiers were rebuilt and their CIBIn
        # repopulated from the neighbors' replayed announcements.
        device = runner.network.devices["B"]
        assert device.verifiers
        assert any(
            st.cib_in
            for verifier in device.verifiers.values()
            for st in verifier.state.values()
        )

    def test_neighbors_resubscribe_after_restart(self):
        runner, _invariants = _deployed_fig2a()
        sent_before = sum(
            m.messages_sent for m in runner.network.metrics.devices.values()
        )
        runner.crash_device("B")
        runner.restart_device("B")
        sent_after = sum(
            m.messages_sent for m in runner.network.metrics.devices.values()
        )
        # Resync traffic: neighbors re-subscribe and re-announce toward B.
        assert sent_after > sent_before

    def test_restart_under_chaos_resyncs(self):
        runner, invariants = _deployed_fig2a(
            chaos=ChaosConfig(seed=11, p_loss=0.2, p_dup=0.1, p_reorder=0.2)
        )
        baseline = verdict_flags(runner.network, invariants)
        runner.crash_device("A")
        runner.restart_device("A")
        assert runner.network.converged
        assert verdict_flags(runner.network, invariants) == baseline
