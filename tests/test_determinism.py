"""Simulator determinism regression + the event-budget boundary.

With ``cpu_scale=0`` the simulated clock depends only on link latencies, so
two identical runs must agree on *everything*: event counts, final clocks,
and the exact per-device message logs.  This pins the reproducibility
guarantee the parity and benchmark suites stand on.
"""

import pytest

from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Rule
from repro.errors import SimulationError
from repro.sim import SimKernel, TulkunRunner
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes


def _drive_scenario(ctx):
    """One full burst + fail + recover run with message logging on."""
    topology = fig2a_example()
    p1 = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        reachability(p1, "S", "D"),
        waypoint_reachability(p1, "S", "W", "D"),
    ]
    runner = TulkunRunner(topology, ctx, invariants, cpu_scale=0.0)
    network = runner.deploy({})
    network.metrics.collect_logs = True
    planes = build_fig2_planes(ctx)
    for dev in topology.devices:
        plane = planes.get(dev)
        rules = [
            Rule(r.match, r.action, r.priority) for r in plane.rules
        ] if plane else []
        network.install_rules(dev, rules, at=0.0)
    network.run()
    runner.fail_links([("A", "W")])
    runner.recover_links([("A", "W")])
    return {
        "events": network.kernel.events_processed,
        "clock": network.kernel.now,
        "last_activity": network.last_activity,
        "logs": {
            dev: tuple(metrics.message_log)
            for dev, metrics in sorted(network.metrics.devices.items())
        },
        "verdicts": {
            inv.name: network.all_hold(inv.name) for inv in invariants
        },
    }


class TestDeterminism:
    def test_identical_runs_are_identical(self, ctx):
        first = _drive_scenario(ctx)
        second = _drive_scenario(ctx)
        assert first["events"] == second["events"]
        assert first["clock"] == second["clock"]
        assert first["last_activity"] == second["last_activity"]
        assert first["verdicts"] == second["verdicts"]
        assert first["logs"] == second["logs"]

    def test_message_logs_populated_and_structured(self, ctx):
        run = _drive_scenario(ctx)
        entries = [e for log in run["logs"].values() for e in log]
        assert entries, "collect_logs produced no message log"
        for src, dst, kind, size in entries:
            assert kind in ("UpdateMessage", "SubscribeMessage")
            assert size > 0

    def test_logs_off_by_default(self, ctx):
        topology = fig2a_example()
        p1 = ctx.ip_prefix("10.0.0.0/23")
        runner = TulkunRunner(topology, ctx, [reachability(p1, "S", "D")])
        planes = build_fig2_planes(ctx)
        runner.burst_update(
            {
                dev: [Rule(r.match, r.action, r.priority) for r in p.rules]
                for dev, p in planes.items()
            }
        )
        assert all(
            not m.message_log
            for m in runner.network.metrics.devices.values()
        )


class TestKernelEventBudget:
    def _loaded_kernel(self, count):
        kernel = SimKernel()
        for i in range(count):
            kernel.schedule_at(float(i), lambda: None)
        return kernel

    def test_exactly_budget_events_complete(self):
        kernel = self._loaded_kernel(5)
        kernel.run(max_events=5)
        assert kernel.events_processed == 5

    def test_budget_plus_one_raises(self):
        kernel = self._loaded_kernel(6)
        with pytest.raises(SimulationError):
            kernel.run(max_events=5)
        # The five budgeted events did run; the sixth never executed.
        assert kernel.events_processed == 5
        assert kernel.pending == 1

    def test_self_scheduling_livelock_is_caught(self):
        kernel = SimKernel()

        def reschedule():
            kernel.schedule_in(1.0, reschedule)

        kernel.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            kernel.run(max_events=100)
        assert kernel.events_processed == 100
