"""Every example script must run cleanly and print its expected verdicts."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "VIOLATED" in out            # the paper's violated example
        assert "holds=True" in out          # ... fixed by the §2.2.3 update
        assert "universes" in out

    def test_wan_verification(self):
        out = run_example("wan_verification.py")
        assert "burst update" in out
        assert "Tulkun" in out
        assert "80% quantile" in out

    def test_datacenter_rcdc(self):
        out = run_example("datacenter_rcdc.py")
        assert "HOLDS" in out
        assert "0 DVM messages" in out      # equal → local contracts
        assert "VIOLATED" in out            # after dropping an ECMP member

    def test_fault_tolerance(self):
        out = run_example("fault_tolerance.py")
        assert "scenes precomputed" in out
        assert "holds=True" in out
        assert "holds=False" in out

    def test_service_chain(self):
        out = run_example("service_chain.py")
        assert "NAT service chain" in out
        assert "SUBSCRIBEs sent by LB: 1" in out
        assert "(0, 1), (1, 0)" in out      # anycast joint counts

    def test_extensions(self):
        out = run_example("extensions.py")
        assert "gate devices" in out
        assert "flat verification agrees: True" in out
        assert "paths share interior devices" in out
