"""Sliced-vs-unsliced differential: routing must never change a verdict.

Slicing is a pure scheduling optimization — routing events only to the
slices whose footprint they intersect, caching untouched verdicts — so a
sliced deployment must produce **byte-identical** outcomes to an unsliced
one on the same stream: per-invariant statuses, per-ingress verdict flags,
violation regions (canonical ROBDD bytes) and the full source counting
state.  Each case draws a seeded multi-tenant request stream, runs it
through an unsliced batch leg and sliced legs (batch + a random chunking),
and compares everything.

Coverage: fig2a multi-tenant streams (explicit tenant mapping, invariant
churn carrying the wire ``tenant`` field) under both predicate-index modes
and both backends, plus FT-4 streams where every invariant is its own
auto slice and with an explicit four-tenant grouping.
"""

import json
import random

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.language import parse_invariants
from repro.dataplane import DevicePlane, Rule
from repro.dataplane.fib import parse_fib_text
from repro.datasets import build_dataset
from repro.serve import StreamSession
from repro.sim import TulkunRunner
from repro.topology.fileformat import parse_topology_text
from tests.test_serve_differential import (
    FIG2A_KEYS,
    FIG2A_LINKS,
    INVARIANT_SPECS,
    MATCH_POOL,
    SPECS,
    StreamGen,
    assert_identical,
    collect_outcome,
    ft4_stream,
)

pytestmark = [pytest.mark.slicing, pytest.mark.serve]

# fig2a invariants grouped into two tenants via the explicit mapping mode
# (names stay unprefixed, so in-stream add/remove specs keep working).
FIG2A_TENANTS = {"alice": ["waypoint"], "bob": ["reach"]}
TENANT_OF_SPEC = {"waypoint": "alice", "reach": "bob"}


def fig2a_session(slices, predicate_index="atoms", backend="serial"):
    ctx = PacketSpaceContext()
    topology = parse_topology_text((SPECS / "fig2a.topo").read_text())
    planes = parse_fib_text(ctx, (SPECS / "fig2a.fib").read_text())
    invariants = parse_invariants(
        ctx, (SPECS / "invariants.tulkun").read_text()
    )
    for dev in topology.devices:
        planes.setdefault(dev, DevicePlane(dev, ctx))
    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        backend=backend,
        workers=2,
        predicate_index=predicate_index,
        slices=slices,
    )
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    return StreamSession(runner, rules)


def ft4_session(slices, predicate_index="atoms", backend="serial"):
    ds = build_dataset("FT-4", pair_limit=6, seed=3)
    runner = TulkunRunner(
        ds.topology,
        ds.ctx,
        ds.invariants,
        backend=backend,
        workers=2,
        predicate_index=predicate_index,
        slices=slices,
    )
    return StreamSession(runner, ds.rules_by_device)


def ft4_tenant_mapping():
    """Round-robin the FT-4 invariants over four explicit tenants."""
    ds = build_dataset("FT-4", pair_limit=6, seed=3)
    mapping = {f"t{i}": [] for i in range(4)}
    for i, inv in enumerate(ds.invariants):
        mapping[f"t{i % 4}"].append(inv.name)
    return {tenant: names for tenant, names in mapping.items() if names}


def multi_tenant_stream(seed, *, invariants=True, count=24):
    """A fig2a stream whose invariant-add requests carry the wire
    ``tenant`` field, exercising the explicit-slice path end to end."""
    topology = parse_topology_text((SPECS / "fig2a.topo").read_text())
    lines = StreamGen(
        seed,
        topology=topology,
        initial_keys=FIG2A_KEYS,
        links=FIG2A_LINKS,
        matches=MATCH_POOL,
        invariant_specs=INVARIANT_SPECS if invariants else None,
    ).generate(count)
    stamped = []
    for line in lines:
        obj = json.loads(line)
        if obj.get("op") == "invariant" and "add" in obj:
            for name, tenant in TENANT_OF_SPEC.items():
                if f"invariant {name}" in obj["add"]:
                    obj["tenant"] = tenant
                    break
        stamped.append(json.dumps(obj))
    return stamped


def run_stream(session_factory, lines, flush_seed=None):
    session = session_factory()
    try:
        session.start()
        rng = random.Random(flush_seed) if flush_seed is not None else None
        for line in lines:
            reply = session.handle_line(line)
            for frame in reply.frames:
                assert frame["frame"] != "error", (line, frame)
            if rng is not None and rng.random() < 0.35:
                session.run_epoch("flush")
        session.run_epoch("final")
        assert not session.pending
        return collect_outcome(session)
    finally:
        session.close()


def sliced_differential(unsliced_factory, sliced_factory, lines, seed):
    """The unsliced batch leg vs the sliced legs (batch + one chunking)."""
    base = run_stream(unsliced_factory, lines)
    assert_identical(base, run_stream(sliced_factory, lines))
    assert_identical(
        base, run_stream(sliced_factory, lines, flush_seed=seed * 23 + 7)
    )


# ----------------------------------------------------------------------
# fig2a, serial backend (the smoke set: 12 streams)
# ----------------------------------------------------------------------
class TestFig2aSliced:
    @pytest.mark.parametrize("seed", range(8))
    def test_atoms(self, seed):
        sliced_differential(
            lambda: fig2a_session(None),
            lambda: fig2a_session(FIG2A_TENANTS),
            multi_tenant_stream(seed),
            seed,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_bdd_index(self, seed):
        sliced_differential(
            lambda: fig2a_session(None, predicate_index="bdd"),
            lambda: fig2a_session(FIG2A_TENANTS, predicate_index="bdd"),
            multi_tenant_stream(seed + 100),
            seed,
        )


# ----------------------------------------------------------------------
# FT-4 and the process backend (heavier: marked slow, run by the CI
# slicing job and the full suite)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestHeavySliced:
    @pytest.mark.parametrize("seed", range(3))
    def test_ft4_auto_slices(self, seed):
        """Every FT-4 invariant is its own auto slice (no tenant prefixes):
        the maximally-fragmented routing case."""
        sliced_differential(
            lambda: ft4_session(None),
            lambda: ft4_session("auto"),
            ft4_stream(seed + 200),
            seed,
        )

    def test_ft4_explicit_tenants(self):
        mapping = ft4_tenant_mapping()
        sliced_differential(
            lambda: ft4_session(None),
            lambda: ft4_session(mapping),
            ft4_stream(210),
            210,
        )

    def test_ft4_bdd_index(self):
        sliced_differential(
            lambda: ft4_session(None, predicate_index="bdd"),
            lambda: ft4_session("auto", predicate_index="bdd"),
            ft4_stream(220),
            220,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_fig2a_process_backend(self, seed):
        """Process pool: the sliced leg partitions workers along slice
        device groups and ships ``only`` filters with every update op."""
        sliced_differential(
            lambda: fig2a_session(None, backend="process"),
            lambda: fig2a_session(FIG2A_TENANTS, backend="process"),
            multi_tenant_stream(seed + 300),
            seed,
        )

    def test_ft4_process_backend(self):
        sliced_differential(
            lambda: ft4_session(None, backend="process"),
            lambda: ft4_session("auto", backend="process"),
            ft4_stream(310),
            310,
        )
