"""Dataset registry: every dataset builds, routes correctly, and the
synthesized FIBs actually deliver."""

import pytest

from repro.bdd.fields import ip_to_int
from repro.dataplane import DevicePlane, Rule, enumerate_universes, TraceStatus
from repro.datasets import (
    DATASETS,
    build_dataset,
    dataset_names,
    inject_errors,
    sample_fault_scenes,
    split_prefix,
)
from repro.errors import DatasetError

SMALL = ["INet2", "B4-13", "STFD", "FT-4"]


class TestRegistry:
    def test_thirteen_plus_datasets(self):
        names = dataset_names()
        assert len(names) >= 13
        for paper_name in (
            "INet2", "B4-13", "STFD", "AT1-1", "AT1-2", "B4-18", "BTNA",
            "NTT", "AT2-1", "AT2-2", "OTEG", "NGDC",
        ):
            assert paper_name in names

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            build_dataset("nope")

    def test_rule_multiplier_scales(self):
        base = build_dataset("AT1-1", pair_limit=4)
        heavy = build_dataset("AT1-2", pair_limit=4)
        assert heavy.topology.link_set() == base.topology.link_set()
        assert heavy.total_rules() >= 3 * base.total_rules()

    @pytest.mark.parametrize("name", SMALL)
    def test_build_and_stats(self, name):
        ds = build_dataset(name, pair_limit=4)
        stats = ds.stats()
        assert stats["devices"] == ds.topology.num_devices
        assert stats["rules"] == ds.total_rules()
        assert stats["pairs"] == len(ds.pairs) <= 4
        assert len(ds.invariants) == len(ds.queries) == len(ds.pairs)

    def test_pair_sampling_deterministic(self):
        a = build_dataset("NTT", pair_limit=6, seed=5)
        b = build_dataset("NTT", pair_limit=6, seed=5)
        assert a.pairs == b.pairs

    def test_all_pairs_when_unlimited(self):
        ds = build_dataset("INet2", pair_limit=None)
        n = ds.topology.num_devices
        assert len(ds.pairs) == n * (n - 1)


class TestSplitPrefix:
    def test_split(self):
        subs = split_prefix("10.0.0.0/24", 4)
        assert subs == [
            "10.0.0.0/26", "10.0.0.64/26", "10.0.0.128/26", "10.0.0.192/26",
        ]

    def test_split_one_way(self):
        assert split_prefix("10.0.0.0/24", 1) == ["10.0.0.0/24"]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(DatasetError):
            split_prefix("10.0.0.0/24", 3)

    def test_too_deep_rejected(self):
        with pytest.raises(DatasetError):
            split_prefix("10.0.0.0/32", 2)


class TestSynthesizedFibs:
    @pytest.mark.parametrize("name", ["INet2", "FT-4"])
    def test_every_pair_delivers(self, name):
        """Reference semantics: a packet addressed to any sampled prefix is
        delivered at its owner along a shortest path."""
        ds = build_dataset(name, pair_limit=6)
        planes = {}
        for dev, rules in ds.rules_by_device.items():
            plane = DevicePlane(dev, ds.ctx)
            plane.install_many(rules)
            planes[dev] = plane
        for query in ds.queries:
            base, _, _len = query.prefix.partition("/")
            pkt = {"dst_ip": ip_to_int(base) + 1}
            universes = enumerate_universes(
                planes, query.ingress, pkt,
                max_hops=ds.topology.num_devices,
            )
            shortest = ds.topology.shortest_hops(query.ingress, query.dest)
            for universe in universes:
                delivered = [
                    t for t in universe if t.status is TraceStatus.DELIVERED
                ]
                assert delivered, f"{query.ingress}->{query.dest} blackholed"
                for trace in delivered:
                    assert trace.path[-1] == query.dest
                    assert len(trace.path) - 1 == shortest


class TestErrorInjection:
    def test_injection_reports(self):
        ds = build_dataset("INet2", pair_limit=4)
        injected = inject_errors(
            ds.topology, ds.rules_by_device, ds.ctx, count=5, seed=2
        )
        assert 0 < len(injected) <= 5
        for dev, kind in injected:
            assert dev in ds.rules_by_device
            assert kind == "blackhole" or kind.startswith("misforward")


class TestFaultSceneSampling:
    def test_sample_counts_and_sizes(self):
        ds = build_dataset("NTT", pair_limit=2)
        scenes = sample_fault_scenes(ds.topology, 30, seed=4)
        assert len(scenes) == 30
        assert len(set(scenes)) == 30
        assert all(1 <= len(scene) <= 3 for scene in scenes)

    def test_connectivity_preserved(self):
        ds = build_dataset("INet2", pair_limit=2)
        scenes = sample_fault_scenes(ds.topology, 15, seed=4)
        for scene in scenes:
            assert ds.topology.without_links(scene).is_connected()

    def test_deterministic(self):
        ds = build_dataset("INet2", pair_limit=2)
        assert sample_fault_scenes(ds.topology, 10, seed=1) == sample_fault_scenes(
            ds.topology, 10, seed=1
        )
