"""DSL ↔ library equivalence: the textual language and the Table 1
constructors must verify identically."""

import pytest

from repro.core.language import parse_invariants
from repro.core.library import (
    bounded_length_reachability,
    isolation,
    non_redundant_reachability,
    reachability,
    waypoint_reachability,
)
from repro.core.planner import Planner
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes


CASES = [
    (
        "reachability",
        """
        invariant x {
            packet_space: dst_ip = 10.0.0.0/23;
            ingress: S;
            behavior: exist >= 1 on (S .* D) with loop_free;
        }
        """,
        lambda space: reachability(space, "S", "D"),
    ),
    (
        "isolation",
        """
        invariant x {
            packet_space: dst_ip = 10.0.0.0/23;
            ingress: S;
            behavior: exist == 0 on (S .* B) with loop_free;
        }
        """,
        lambda space: isolation(space, "S", "B"),
    ),
    (
        "waypoint",
        """
        invariant x {
            packet_space: dst_ip = 10.0.0.0/23;
            ingress: S;
            behavior: exist >= 1 on (S .* W .* D) with loop_free;
        }
        """,
        lambda space: waypoint_reachability(space, "S", "W", "D"),
    ),
    (
        "bounded",
        """
        invariant x {
            packet_space: dst_ip = 10.0.0.0/23;
            ingress: S;
            behavior: exist >= 1 on (S .* D) with loop_free, <= 3;
        }
        """,
        lambda space: bounded_length_reachability(space, "S", "D", 3),
    ),
    (
        "non_redundant",
        """
        invariant x {
            packet_space: dst_ip = 10.0.0.0/23;
            ingress: S;
            behavior: exist == 1 on (S .* D) with loop_free;
        }
        """,
        lambda space: non_redundant_reachability(space, "S", "D"),
    ),
]


@pytest.mark.parametrize("name,text,builder", CASES, ids=[c[0] for c in CASES])
def test_dsl_matches_library(ctx, name, text, builder):
    topo = fig2a_example()
    planes = build_fig2_planes(ctx)
    planner = Planner(topo, ctx)
    (dsl_inv,) = parse_invariants(ctx, text)
    lib_inv = builder(ctx.ip_prefix("10.0.0.0/23"))
    dsl_result = planner.verify(dsl_inv, planes)
    lib_result = planner.verify(lib_inv, planes)
    assert dsl_result.holds == lib_result.holds
    # Same verdict per region: the violating regions must coincide.
    dsl_bad = ctx.union(v.region for v in dsl_result.violations)
    lib_bad = ctx.union(v.region for v in lib_result.violations)
    assert dsl_bad == lib_bad
