"""Protocol-level order independence.

Drives verifier objects directly (no simulator) and delivers their messages
in adversarially shuffled orders; per-channel FIFO order is preserved (the
TCP guarantee DVM assumes) but cross-channel interleaving is arbitrary.
The fixpoint must always equal offline Algorithm 1.
"""

import random
from collections import deque

import pytest

from repro.core.library import reachability
from repro.core.planner import Planner
from repro.core.verifier import OnDeviceVerifier
from repro.topology import fig2a_example, grid
from tests.conftest import random_dataplane


def run_to_fixpoint(tasks, planes, rng):
    """Deliver messages with random cross-channel interleaving until quiet."""
    verifiers = {
        dev: OnDeviceVerifier(task, planes[dev])
        for dev, task in tasks.tasks.items()
    }
    # Per directed channel FIFO queues.
    channels = {}

    def enqueue(src, outgoing):
        for dest, message in outgoing:
            channels.setdefault((src, dest), deque()).append(message)

    for dev, verifier in verifiers.items():
        enqueue(dev, verifier.initialize())

    steps = 0
    while True:
        live = [key for key, queue in channels.items() if queue]
        if not live:
            break
        steps += 1
        if steps > 100_000:
            raise AssertionError("protocol did not quiesce")
        src, dest = rng.choice(live)
        message = channels[(src, dest)].popleft()
        verifier = verifiers[dest]
        from repro.core.dvm import SubscribeMessage, UpdateMessage

        if isinstance(message, UpdateMessage):
            enqueue(dest, verifier.handle_update(message))
        else:
            enqueue(dest, verifier.handle_subscribe(message))
    return verifiers


class TestOrderIndependence:
    @pytest.mark.parametrize("seed", range(10))
    def test_fig2a_random_orders(self, ctx, seed):
        rng = random.Random(seed)
        topo = fig2a_example()
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, "S", "D")
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=seed * 13,
            deliver_at={"10.0.0.0/24": "D"},
        )
        planner = Planner(topo, ctx)
        tasks = planner.decompose(inv)
        verifiers = run_to_fixpoint(tasks, planes, rng)
        offline = planner.verify(inv, planes)
        source_dev = tasks.node_home[tasks.source_nodes["S"]]
        ok, _violations = verifiers[source_dev].verdicts["S"]
        assert ok == offline.holds, f"seed={seed}"

    @pytest.mark.parametrize("seed", range(5))
    def test_grid_random_orders_full_partition(self, ctx, seed):
        """Not just the verdict: the full count partition at the source must
        match offline, under shuffled delivery."""
        rng = random.Random(1000 + seed)
        topo = grid(2, 3)
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, "g0_0", "g1_2")
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=seed * 7,
            deliver_at={"10.0.0.0/24": "g1_2"},
        )
        planner = Planner(topo, ctx)
        tasks = planner.decompose(inv)
        verifiers = run_to_fixpoint(tasks, planes, rng)
        offline = planner.verify(inv, planes)
        source_dev = tasks.node_home[tasks.source_nodes["g0_0"]]
        distributed = verifiers[source_dev].source_counts("g0_0")
        for region, cs in offline.source_counts["g0_0"]:
            for sub, dist_cs in distributed:
                piece = sub & region
                if not piece.is_empty:
                    assert dist_cs == cs, f"seed={seed}"
