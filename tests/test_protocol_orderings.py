"""Protocol-level order independence.

Drives verifier objects directly (no simulator) and delivers their messages
in adversarially shuffled orders; per-channel FIFO order is preserved (the
TCP guarantee DVM assumes) but cross-channel interleaving is arbitrary.
The fixpoint must always equal offline Algorithm 1.
"""

import random
from collections import deque

import pytest

from repro.core.dvm import UpdateMessage
from repro.core.library import reachability
from repro.core.planner import Planner
from repro.core.verifier import OnDeviceVerifier
from repro.topology import fig2a_example, grid
from tests.conftest import random_dataplane


def run_to_fixpoint(tasks, planes, rng):
    """Deliver messages with random cross-channel interleaving until quiet."""
    verifiers = {
        dev: OnDeviceVerifier(task, planes[dev])
        for dev, task in tasks.tasks.items()
    }
    # Per directed channel FIFO queues.
    channels = {}

    def enqueue(src, outgoing):
        for dest, message in outgoing:
            channels.setdefault((src, dest), deque()).append(message)

    for dev, verifier in verifiers.items():
        enqueue(dev, verifier.initialize())

    steps = 0
    while True:
        live = [key for key, queue in channels.items() if queue]
        if not live:
            break
        steps += 1
        if steps > 100_000:
            raise AssertionError("protocol did not quiesce")
        src, dest = rng.choice(live)
        message = channels[(src, dest)].popleft()
        verifier = verifiers[dest]
        from repro.core.dvm import SubscribeMessage, UpdateMessage

        if isinstance(message, UpdateMessage):
            enqueue(dest, verifier.handle_update(message))
        else:
            enqueue(dest, verifier.handle_subscribe(message))
    return verifiers


class TestOrderIndependence:
    @pytest.mark.parametrize("seed", range(10))
    def test_fig2a_random_orders(self, ctx, seed):
        rng = random.Random(seed)
        topo = fig2a_example()
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, "S", "D")
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=seed * 13,
            deliver_at={"10.0.0.0/24": "D"},
        )
        planner = Planner(topo, ctx)
        tasks = planner.decompose(inv)
        verifiers = run_to_fixpoint(tasks, planes, rng)
        offline = planner.verify(inv, planes)
        source_dev = tasks.node_home[tasks.source_nodes["S"]]
        ok, _violations = verifiers[source_dev].verdicts["S"]
        assert ok == offline.holds, f"seed={seed}"

    @pytest.mark.parametrize("seed", range(5))
    def test_grid_random_orders_full_partition(self, ctx, seed):
        """Not just the verdict: the full count partition at the source must
        match offline, under shuffled delivery."""
        rng = random.Random(1000 + seed)
        topo = grid(2, 3)
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, "g0_0", "g1_2")
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=seed * 7,
            deliver_at={"10.0.0.0/24": "g1_2"},
        )
        planner = Planner(topo, ctx)
        tasks = planner.decompose(inv)
        verifiers = run_to_fixpoint(tasks, planes, rng)
        offline = planner.verify(inv, planes)
        source_dev = tasks.node_home[tasks.source_nodes["g0_0"]]
        distributed = verifiers[source_dev].source_counts("g0_0")
        for region, cs in offline.source_counts["g0_0"]:
            for sub, dist_cs in distributed:
                piece = sub & region
                if not piece.is_empty:
                    assert dist_cs == cs, f"seed={seed}"


# ----------------------------------------------------------------------
# Exhaustive small-batch commutativity
# ----------------------------------------------------------------------
def _deliver(verifiers, channels, dst, message):
    verifier = verifiers[dst]
    if isinstance(message, UpdateMessage):
        outgoing = verifier.handle_update(message)
    else:
        outgoing = verifier.handle_subscribe(message)
    for nxt, msg in outgoing:
        channels.setdefault((dst, nxt), deque()).append(msg)


def drain(verifiers, channels, rng, hold_dest=None):
    """Deliver queued messages (random interleaving) until quiescent; with
    ``hold_dest`` set, messages bound for that device stay queued."""
    steps = 0
    while True:
        live = [
            key for key, queue in channels.items()
            if queue and key[1] != hold_dest
        ]
        if not live:
            return
        steps += 1
        assert steps <= 100_000, "protocol did not quiesce"
        src, dst = rng.choice(live)
        _deliver(verifiers, channels, dst, channels[(src, dst)].popleft())


def run_holding_dest(tasks, planes, dest, rng):
    """Run the protocol to quiescence but *hold back* every message destined
    to ``dest``: it still initializes and subscribes, but sees no inbound.

    Returns the verifiers, the live channel map and the held batch (one
    FIFO list per sending neighbour).
    """
    verifiers = {
        dev: OnDeviceVerifier(task, planes[dev])
        for dev, task in tasks.tasks.items()
    }
    channels = {}
    for dev, verifier in verifiers.items():
        for dst, message in verifier.initialize():
            channels.setdefault((dev, dst), deque()).append(message)
    drain(verifiers, channels, rng, hold_dest=dest)
    held = {
        key[0]: list(queue)
        for key, queue in channels.items()
        if key[1] == dest and queue
    }
    for key in list(channels):
        if key[1] == dest:
            del channels[key]
    return verifiers, channels, held


def channel_interleavings(queues):
    """Every interleaving of the per-channel FIFO queues (cross-channel
    order arbitrary, per-channel order preserved) — the §5 delivery model."""
    live = [src for src, queue in queues.items() if queue]
    if not live:
        yield []
        return
    for src in live:
        rest = {
            s: (q[1:] if s == src else q) for s, q in queues.items()
        }
        for tail in channel_interleavings(rest):
            yield [(src, queues[src][0])] + tail


def assert_same_partition(counts_a, counts_b, context=""):
    """Two (region, counts) partitions of the same packet space must define
    the same counting function: equal on every non-empty overlap."""
    for region_a, cs_a in counts_a:
        for region_b, cs_b in counts_b:
            piece = region_a & region_b
            if not piece.is_empty:
                assert cs_a == cs_b, context


def _all_orders_commute(ctx, topo, ingress, egress, dest, seed):
    """Core harness: hold ``dest``'s inbound batch back, deliver it in every
    cross-channel interleaving, drain to the global fixpoint each time, and
    require the source counting result to be order-invariant and equal to
    offline Algorithm 1.  Returns the number of interleavings exercised."""
    space = ctx.ip_prefix("10.0.0.0/24")
    inv = reachability(space, ingress, egress)
    planes = random_dataplane(
        topo, ctx, ["10.0.0.0/24"], seed=seed * 29,
        deliver_at={"10.0.0.0/24": egress},
    )
    planner = Planner(topo, ctx)
    tasks = planner.decompose(inv)
    source_dev = tasks.node_home[tasks.source_nodes[ingress]]
    offline = planner.verify(inv, planes)

    def run_order(order_index):
        rng = random.Random(seed)
        verifiers, channels, held = run_holding_dest(
            tasks, planes, dest, rng
        )
        orders = list(channel_interleavings(held))
        for src, message in orders[order_index]:
            _deliver(verifiers, channels, dest, message)
        drain(verifiers, channels, rng)
        return len(orders), verifiers[source_dev].source_counts(ingress)

    total, baseline = run_order(0)
    assert total <= 1000  # batch small enough for exhaustive enumeration
    offline_counts = offline.source_counts[ingress]
    for index in range(total):
        _total, counts = run_order(index)
        assert_same_partition(baseline, counts, f"seed={seed} order={index}")
        assert_same_partition(
            offline_counts, counts, f"seed={seed} order={index} vs offline"
        )
    return total


class TestExhaustiveBatchCommutativity:
    """Deliver a held-back inbound batch in *every* cross-channel
    interleaving (per-channel FIFO preserved, as §5 assumes): after draining
    to the fixpoint the CIBs — observed through the source counting result —
    must be identical each time."""

    @pytest.mark.parametrize("seed", range(2))
    def test_fig2a_waypoint_batch_all_orders(self, ctx, seed):
        # W sits mid-path and hears from two neighbours, so its held batch
        # genuinely interleaves several channels.
        total = _all_orders_commute(
            ctx, fig2a_example(), "S", "D", dest="W", seed=seed
        )
        assert total > 1, "batch collapsed to one channel; test is vacuous"

    # Pairs chosen so the held batch spans >1 channel AND the plane is one
    # where the distributed fixpoint provably equals offline (some random
    # planes with loops land in the known offline/eventual-count gap that
    # the random-order tests above scope out).
    @pytest.mark.parametrize(
        "dest,seed", [("g1_1", 0), ("g0_0", 3), ("g1_1", 4), ("g0_1", 7)]
    )
    def test_grid_batch_all_orders(self, ctx, dest, seed):
        total = _all_orders_commute(
            ctx, grid(2, 3), "g0_0", "g1_2", dest=dest, seed=seed
        )
        assert total > 1, "batch collapsed to one channel; test is vacuous"
