"""§7 analyses: gate devices (cut-based local verification) and
divide-and-conquer one-big-switch verification."""

import pytest

from repro.core.analysis import gate_devices, gate_nodes, path_count
from repro.core.library import reachability
from repro.core.partition import (
    BigSwitchAbstraction,
    partition_by_bfs,
    verify_partitioned,
)
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule
from repro.datasets import generate_fibs
from repro.errors import PlannerError
from repro.topology import Topology, fig2a_example, line, random_wan


class TestGateAnalysis:
    def test_fig2a_gate_is_A(self, ctx, fig2a):
        """§7's own example: device A is a cut between S and D."""
        inv = reachability(ctx.ip_prefix("10.0.0.0/23"), "S", "D")
        net = Planner(fig2a, ctx).build_dpvnet(inv)
        gates = gate_devices(net)
        assert "A" in gates
        assert "S" in gates and "D" in gates  # endpoints trivially gates
        assert "B" not in gates and "W" not in gates

    def test_line_all_devices_gates(self, ctx):
        topo = line(4)
        inv = reachability(ctx.ip_prefix("10.0.0.0/24"), "d0", "d3")
        net = Planner(topo, ctx).build_dpvnet(inv)
        assert gate_devices(net) == ["d0", "d1", "d2", "d3"]

    def test_path_count(self, ctx, fig2a):
        inv = reachability(ctx.ip_prefix("10.0.0.0/23"), "S", "D")
        net = Planner(fig2a, ctx).build_dpvnet(inv)
        assert path_count(net) == len(net.enumerate_paths())

    def test_empty_net_no_gates(self, ctx):
        topo = line(3)
        inv = reachability(ctx.ip_prefix("10.0.0.0/24"), "d0", "d2")
        net = Planner(topo, ctx).build_dpvnet(inv)
        # Remove acceptance by checking an empty-path-set variant:
        from repro.core.dpvnet import DpvNet

        empty = DpvNet({}, {"d0": None}, 1)
        assert gate_nodes(empty) == set()


class TestPartitioner:
    def test_partition_covers_all_devices(self):
        topo = random_wan(20, 15, seed=3)
        assignment = partition_by_bfs(topo, 3)
        assert set(assignment) == set(topo.devices)
        assert len(set(assignment.values())) <= 3

    def test_single_partition(self):
        topo = line(4)
        assignment = partition_by_bfs(topo, 1)
        assert set(assignment.values()) == {"part0"}

    def test_invalid_count(self):
        with pytest.raises(PlannerError):
            partition_by_bfs(line(3), 0)


class TestBigSwitchAbstraction:
    def test_abstract_topology_links(self):
        topo = line(4)  # d0 d1 | d2 d3 with a manual split
        assignment = {"d0": "left", "d1": "left", "d2": "right", "d3": "right"}
        ctx = __import__("repro.bdd", fromlist=["PacketSpaceContext"]).PacketSpaceContext()
        abstraction = BigSwitchAbstraction(topo, ctx, assignment)
        abstract = abstraction.abstract_topology
        assert sorted(abstract.devices) == ["left", "right"]
        assert abstract.has_link("left", "right")

    def test_border_devices(self, ctx):
        topo = line(4)
        assignment = {"d0": "left", "d1": "left", "d2": "right", "d3": "right"}
        abstraction = BigSwitchAbstraction(topo, ctx, assignment)
        assert abstraction.border_devices("left", "right") == ["d1"]
        assert abstraction.border_devices("right", "left") == ["d2"]

    def test_missing_assignment_rejected(self, ctx):
        topo = line(3)
        with pytest.raises(PlannerError):
            BigSwitchAbstraction(topo, ctx, {"d0": "x"})


class TestVerifyPartitioned:
    def _routed_network(self, ctx, n=8):
        topo = random_wan(n, 6, seed=4)
        rules = generate_fibs(topo, ctx)
        planes = {}
        for dev, dev_rules in rules.items():
            plane = DevicePlane(dev, ctx)
            plane.install_many(dev_rules)
            planes[dev] = plane
        return topo, planes

    def test_agrees_with_flat_verification_when_correct(self, dst_ctx):
        ctx = dst_ctx
        topo, planes = self._routed_network(ctx)
        src, dst = topo.devices[0], topo.devices[-1]
        prefix = topo.external_prefixes[dst][0]
        space = ctx.ip_prefix(prefix)
        flat = Planner(topo, ctx).verify(
            reachability(space, src, dst, loop_free=True), planes
        )
        result = verify_partitioned(
            topo, ctx, planes, space, src, dst, num_partitions=2
        )
        assert result.holds == flat.holds is True

    def test_detects_blackhole(self, dst_ctx):
        ctx = dst_ctx
        topo, planes = self._routed_network(ctx)
        src, dst = topo.devices[0], topo.devices[-1]
        prefix = topo.external_prefixes[dst][0]
        space = ctx.ip_prefix(prefix)
        # Blackhole the space everywhere except at the destination: no
        # partition can cross it anymore.
        for dev, plane in planes.items():
            if dev == dst:
                continue
            for rule in list(plane.rules):
                if rule.match == space:
                    plane.replace_rule(
                        rule.rule_id, Rule(space, Action.drop(), rule.priority)
                    )
        result = verify_partitioned(
            topo, ctx, planes, space, src, dst, num_partitions=2
        )
        assert not result.holds

    def test_same_partition_case(self, dst_ctx):
        ctx = dst_ctx
        topo, planes = self._routed_network(ctx)
        devices = topo.devices
        src = devices[0]
        dst = next(d for d in devices[1:] if topo.has_link(src, d))
        prefix = topo.external_prefixes[dst][0]
        space = ctx.ip_prefix(prefix)
        result = verify_partitioned(
            topo, ctx, planes, space, src, dst, num_partitions=1
        )
        assert result.holds
