"""Scenario runner + Tulkun-vs-baselines agreement on real datasets."""

import pytest

from repro.baselines import ALL_BASELINES
from repro.dataplane import Action, DevicePlane, Rule
from repro.datasets import build_dataset, inject_errors
from repro.sim import TulkunRunner, apply_intents, random_update_intents


@pytest.fixture(scope="module")
def inet2():
    return build_dataset("INet2", pair_limit=6, seed=11)


def fresh_rules(ds):
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in rules]
        for dev, rules in ds.rules_by_device.items()
    }


def fresh_planes(ds):
    planes = {}
    for dev, rules in fresh_rules(ds).items():
        plane = DevicePlane(dev, ds.ctx)
        plane.install_many(rules)
        planes[dev] = plane
    return planes


class TestBurst:
    def test_correct_dataset_all_hold(self, inet2):
        runner = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        result = runner.burst_update(fresh_rules(inet2))
        assert all(result.holds.values())
        assert result.verification_time > 0

    def test_injected_errors_found(self, inet2):
        """§9.3.1: "Tulkun successfully finds all the errors we injected"."""
        corrupted = fresh_rules(inet2)
        # Blackhole the first query's prefix at its ingress.
        query = inet2.queries[0]
        target = inet2.ctx.ip_prefix(query.prefix)
        for rule in corrupted[query.ingress]:
            if rule.match == target:
                corrupted[query.ingress][
                    corrupted[query.ingress].index(rule)
                ] = Rule(rule.match, Action.drop(), rule.priority)
                break
        runner = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        result = runner.burst_update(corrupted)
        bad_name = f"reach_{query.ingress}_{query.dest}"
        assert result.holds[bad_name] is False
        others = [v for name, v in result.holds.items() if name != bad_name]
        # The corruption may collaterally affect other pairs routed through
        # the same prefix, but at least the targeted invariant must fail.
        assert any(others) or len(others) == 0


class TestIncremental:
    def test_intents_apply_and_measure(self, inet2):
        runner = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        runner.burst_update(fresh_rules(inet2))
        planes = {
            d: runner.network.devices[d].plane for d in inet2.topology.devices
        }
        intents = random_update_intents(inet2.topology, planes, 5, seed=9)
        result = apply_intents(runner, intents)
        assert result.times
        assert all(t >= 0 for t in result.times)
        assert result.quantile(0.8) >= result.quantile(0.2)

    def test_restore_returns_to_green(self, inet2):
        runner = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        runner.burst_update(fresh_rules(inet2))
        planes = {
            d: runner.network.devices[d].plane for d in inet2.topology.devices
        }
        intents = random_update_intents(
            inet2.topology, planes, 4, seed=10, drop_fraction=1.0
        )
        apply_intents(runner, intents, restore=True)
        # Every drop intent was restored → all invariants hold again.
        assert all(
            runner.network.all_hold(inv.name) for inv in inet2.invariants
        )

    def test_fraction_below(self, inet2):
        from repro.sim import IncrementalResult

        result = IncrementalResult(times=[0.001, 0.002, 0.1])
        assert result.fraction_below(0.01) == pytest.approx(2 / 3)


class TestAgreementWithBaselines:
    @pytest.mark.parametrize("tool_cls", ALL_BASELINES, ids=lambda c: c.name)
    def test_same_verdict_on_corrupted_dataset(self, inet2, tool_cls):
        """Tulkun and each baseline must agree on whether the (corrupted)
        data plane satisfies the all-pair requirements."""
        corrupted = fresh_rules(inet2)
        query = inet2.queries[1]
        target = inet2.ctx.ip_prefix(query.prefix)
        dev = query.ingress
        for i, rule in enumerate(corrupted[dev]):
            if rule.match == target:
                corrupted[dev][i] = Rule(rule.match, Action.drop(), rule.priority)
                break
        # Tulkun.
        runner = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        tulkun_result = runner.burst_update(corrupted)
        tulkun_holds = all(tulkun_result.holds.values())
        # Baseline (fresh planes from the same corrupted rule set).
        planes = {}
        for d, rules in corrupted.items():
            plane = DevicePlane(d, inet2.ctx)
            plane.install_many(
                [Rule(r.match, r.action, r.priority) for r in rules]
            )
            planes[d] = plane
        tool = tool_cls(inet2.topology, inet2.ctx, inet2.queries)
        report = tool.burst_verify(planes)
        assert report.holds == tulkun_holds is False


class TestDcDataset:
    def test_ft4_shortest_path_reachability(self):
        ds = build_dataset("FT-4", pair_limit=4, seed=2)
        runner = TulkunRunner(ds.topology, ds.ctx, ds.invariants)
        result = runner.burst_update(
            {
                dev: [Rule(r.match, r.action, r.priority) for r in rules]
                for dev, rules in ds.rules_by_device.items()
            }
        )
        assert all(result.holds.values())


class TestApplyUpdates:
    def _bursts(self, inet2, runner):
        """Two bursts touching two devices: blackhole then restore on dev
        A, plus a fresh low-priority drop appearing on dev B in burst 2."""
        q0, q1 = inet2.queries[0], inet2.queries[1]
        plane_a = runner.network.devices[q0.ingress].plane
        victim = plane_a.rules[0]
        blackhole = Rule(victim.match, Action.drop(), victim.priority)
        restored = Rule(victim.match, victim.action, victim.priority)
        shadow = Rule(
            inet2.ctx.ip_prefix(q1.prefix), Action.drop(), 0
        )
        burst_1 = [(q0.ingress, blackhole, victim.rule_id)]
        burst_2 = [
            (q0.ingress, restored, blackhole.rule_id),
            (q1.ingress, shadow, None),
        ]
        return burst_1, burst_2

    def _fingerprint(self, runner):
        from tests.test_parallel_backend import (
            serial_fingerprints,
            verdict_flags,
        )

        return (
            serial_fingerprints(runner),
            verdict_flags(runner.network, runner.invariants),
        )

    def test_two_bursts_match_one_combined_batch(self, inet2):
        """apply_updates is associative at quiescence: splitting a batch
        into two sequential bursts reaches the same fixpoint."""
        split = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        split.burst_update(fresh_rules(inet2))
        burst_1, burst_2 = self._bursts(inet2, split)
        assert split.apply_updates(burst_1) >= 0
        assert split.apply_updates(burst_2) >= 0

        combined = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        combined.burst_update(fresh_rules(inet2))
        burst_1c, burst_2c = self._bursts(inet2, combined)
        combined.apply_updates(burst_1c + burst_2c)

        assert self._fingerprint(split) == self._fingerprint(combined)
        assert split.statuses() == combined.statuses()

    def test_empty_burst_is_a_noop(self, inet2):
        runner = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        runner.burst_update(fresh_rules(inet2))
        before = self._fingerprint(runner)
        assert runner.apply_updates([]) == 0.0
        assert self._fingerprint(runner) == before


class TestDirectIncrementalApi:
    def test_incremental_updates_tuples(self, inet2):
        """The low-level (device, install, remove) update API."""
        from repro.dataplane import Action

        runner = TulkunRunner(inet2.topology, inet2.ctx, inet2.invariants)
        runner.burst_update(fresh_rules(inet2))
        dev = inet2.queries[0].ingress
        plane = runner.network.devices[dev].plane
        victim = plane.rules[0]
        changed = Rule(victim.match, Action.drop(), victim.priority)
        restored = Rule(victim.match, victim.action, victim.priority)
        result = runner.incremental_updates(
            [
                (dev, changed, victim.rule_id),
                (dev, restored, changed.rule_id),
            ]
        )
        assert len(result.times) == 2
        assert all(t >= 0 for t in result.times)
