"""DevicePlane: installs, removals, deltas, forwarding queries."""

import pytest

from repro.dataplane import Action, DevicePlane, Rule
from repro.errors import DataPlaneError
from tests.conftest import packet


class TestInstallRemove:
    def test_install_returns_delta(self, ctx):
        plane = DevicePlane("X", ctx)
        rule = Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), 24)
        deltas = plane.install_rule(rule)
        region = ctx.union(d.predicate for d in deltas)
        assert region == ctx.ip_prefix("10.0.0.0/24")
        assert deltas[0].old_action == Action.drop()
        assert deltas[0].new_action == Action.forward_all(["A"])

    def test_double_install_rejected(self, ctx):
        plane = DevicePlane("X", ctx)
        rule = Rule(ctx.universe, Action.drop(), 1)
        plane.install_rule(rule)
        with pytest.raises(DataPlaneError):
            plane.install_rule(rule)

    def test_remove_returns_inverse_delta(self, ctx):
        plane = DevicePlane("X", ctx)
        rule = Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), 24)
        plane.install_rule(rule)
        deltas = plane.remove_rule(rule.rule_id)
        assert deltas[0].old_action == Action.forward_all(["A"])
        assert deltas[0].new_action == Action.drop()

    def test_remove_unknown_rejected(self, ctx):
        plane = DevicePlane("X", ctx)
        with pytest.raises(DataPlaneError):
            plane.remove_rule(12345)

    def test_replace_rule_single_delta_region(self, ctx):
        plane = DevicePlane("X", ctx)
        old = Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), 24)
        plane.install_rule(old)
        new = Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["B"]), 24)
        deltas = plane.replace_rule(old.rule_id, new)
        region = ctx.union(d.predicate for d in deltas)
        assert region == ctx.ip_prefix("10.0.0.0/24")
        assert plane.get_rule(old.rule_id) is None
        assert plane.get_rule(new.rule_id) is new

    def test_shadowed_install_no_delta(self, ctx):
        plane = DevicePlane("X", ctx)
        plane.install_rule(Rule(ctx.universe, Action.forward_all(["A"]), 100))
        hidden = Rule(ctx.ip_prefix("10.0.0.0/8"), Action.drop(), 1)
        assert plane.install_rule(hidden) == []

    def test_install_many_skips_delta(self, ctx):
        plane = DevicePlane("X", ctx)
        rules = [
            Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), 24),
            Rule(ctx.ip_prefix("10.0.1.0/24"), Action.forward_all(["B"]), 24),
        ]
        plane.install_many(rules)
        assert plane.num_rules == 2

    def test_clear(self, ctx):
        plane = DevicePlane("X", ctx)
        plane.install_many([Rule(ctx.universe, Action.drop(), 1)])
        plane.clear()
        assert plane.num_rules == 0


class TestForwarding:
    def test_fwd_packet_longest_prefix(self, ctx):
        plane = DevicePlane("X", ctx)
        plane.install_many(
            [
                Rule(ctx.ip_prefix("10.0.0.0/8"), Action.forward_all(["A"]), 8),
                Rule(ctx.ip_prefix("10.1.0.0/16"), Action.forward_all(["B"]), 16),
            ]
        )
        assert plane.fwd_packet(packet("10.1.2.3")) == Action.forward_all(["B"])
        assert plane.fwd_packet(packet("10.2.2.3")) == Action.forward_all(["A"])
        assert plane.fwd_packet(packet("192.168.0.1")) == Action.drop()

    def test_fwd_covers_query(self, ctx):
        plane = DevicePlane("X", ctx)
        plane.install_many(
            [Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), 24)]
        )
        query = ctx.ip_prefix("10.0.0.0/16")
        pieces = plane.fwd(query)
        assert ctx.union(p for p, _a in pieces) == query

    def test_lec_cache_invalidation(self, ctx):
        plane = DevicePlane("X", ctx)
        t1 = plane.lec_table()
        assert plane.lec_table() is t1  # cached
        plane.install_rule(Rule(ctx.universe, Action.forward_all(["A"]), 5))
        assert plane.lec_table() is not t1
