"""Header layouts: field encodings, prefixes, ranges, decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.fields import HeaderLayout, int_to_ip, ip_to_int
from repro.bdd.manager import TRUE


class TestIpConversion:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "10.0.1.255", "255.255.255.255", "192.168.1.1"):
            assert int_to_ip(ip_to_int(text)) == text

    def test_known_value(self):
        assert ip_to_int("10.0.0.0") == 0x0A000000

    def test_malformed(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestLayout:
    def test_default_layout_fields(self):
        layout = HeaderLayout.default()
        assert layout.field_names() == [
            "dst_ip", "dst_port", "src_ip", "src_port", "proto",
        ]
        assert layout.num_vars == 32 + 16 + 32 + 16 + 8

    def test_dst_only_layout(self):
        layout = HeaderLayout.dst_only()
        assert layout.num_vars == 32

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([("a", 4), ("a", 4)])

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([("a", 0)])

    def test_unknown_field(self):
        layout = HeaderLayout.default()
        with pytest.raises(KeyError):
            layout.field("ttl")


class TestPredicicateConstruction:
    @pytest.fixture
    def layout(self):
        return HeaderLayout.default()

    @pytest.fixture
    def mgr(self, layout):
        return layout.new_manager()

    def test_prefix_nesting(self, layout, mgr):
        p23 = layout.prefix(mgr, "dst_ip", "10.0.0.0", 23)
        p24 = layout.prefix(mgr, "dst_ip", "10.0.0.0", 24)
        p24b = layout.prefix(mgr, "dst_ip", "10.0.1.0", 24)
        assert mgr.implies(p24, p23)
        assert mgr.implies(p24b, p23)
        assert mgr.apply_or(p24, p24b) == p23

    def test_prefix_zero_length_is_universe(self, layout, mgr):
        assert layout.prefix(mgr, "dst_ip", 0, 0) == TRUE

    def test_value_count(self, layout, mgr):
        node = layout.value(mgr, "dst_port", 80)
        # Exactly one port value: count = 2^(num_vars - 16).
        assert mgr.count(node) == 1 << (layout.num_vars - 16)

    def test_value_out_of_range(self, layout, mgr):
        with pytest.raises(ValueError):
            layout.value(mgr, "proto", 256)

    def test_range_matches_loop(self, layout, mgr):
        node = layout.range_(mgr, "proto", 6, 17)
        per_value = 1 << (layout.num_vars - 8)
        assert mgr.count(node) == 12 * per_value

    def test_range_full_field(self, layout, mgr):
        assert layout.range_(mgr, "proto", 0, 255) == TRUE

    def test_range_invalid(self, layout, mgr):
        with pytest.raises(ValueError):
            layout.range_(mgr, "proto", 17, 6)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_range_count_property(self, a, b):
        layout = HeaderLayout([("f", 8)])
        mgr = layout.new_manager()
        lo, hi = min(a, b), max(a, b)
        node = layout.range_(mgr, "f", lo, hi)
        assert mgr.count(node) == hi - lo + 1

    def test_not_value(self, layout, mgr):
        node = layout.not_value(mgr, "dst_port", 80)
        value = layout.value(mgr, "dst_port", 80)
        assert mgr.apply_and(node, value) == 0
        assert mgr.apply_or(node, value) == TRUE


class TestDecoding:
    def test_decode_roundtrip(self):
        layout = HeaderLayout.default()
        mgr = layout.new_manager()
        node = layout.value(mgr, "dst_ip", ip_to_int("10.1.2.3"))
        assignment = mgr.pick_one(node)
        value, mask = layout.decode(assignment, "dst_ip")
        assert value == ip_to_int("10.1.2.3")
        assert mask == 0xFFFFFFFF

    def test_decode_partial_mask(self):
        layout = HeaderLayout.default()
        mgr = layout.new_manager()
        node = layout.prefix(mgr, "dst_ip", "10.0.0.0", 8)
        assignment = mgr.pick_one(node)
        _value, mask = layout.decode(assignment, "dst_ip")
        assert mask == 0xFF000000

    def test_concrete_packet(self):
        layout = HeaderLayout.default()
        mgr = layout.new_manager()
        node = layout.value(mgr, "dst_port", 443)
        pkt = layout.concrete_packet(mgr, node)
        assert pkt["dst_port"] == 443

    def test_concrete_packet_unsat(self):
        layout = HeaderLayout.default()
        mgr = layout.new_manager()
        assert layout.concrete_packet(mgr, 0) is None

    def test_packet_to_node_membership(self):
        layout = HeaderLayout.default()
        mgr = layout.new_manager()
        prefix = layout.prefix(mgr, "dst_ip", "10.0.0.0", 24)
        inside = layout.packet_to_node(
            mgr, {"dst_ip": ip_to_int("10.0.0.7")}
        )
        outside = layout.packet_to_node(
            mgr, {"dst_ip": ip_to_int("10.0.1.7")}
        )
        assert mgr.implies(inside, prefix)
        assert not mgr.implies(outside, prefix)
