"""Automata: NFA simulation, subset construction, minimization, products.

The key property test cross-checks the compiled DFA against Python's ``re``
module on randomized paths: device names map to single characters, our regex
syntax maps to the equivalent ``re`` pattern.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    build_nfa,
    compile_regex,
    dfa_product,
    dfa_union,
    parse_regex,
)
from repro.errors import RegexSyntaxError

ALPHABET = ("A", "B", "C", "D", "S")


def compile_(text):
    return compile_regex(parse_regex(text), ALPHABET)


class TestDfaBasics:
    def test_waypoint(self):
        dfa = compile_("S .* B .* D")
        assert dfa.accepts(["S", "B", "D"])
        assert dfa.accepts(["S", "A", "B", "C", "D"])
        assert not dfa.accepts(["S", "A", "D"])
        assert not dfa.accepts(["S", "B"])

    def test_empty_path_never_accepted_by_symbol(self):
        assert not compile_("S").accepts([])
        assert compile_("S").accepts(["S"])

    def test_class_and_negation(self):
        dfa = compile_("S [^A] D")
        assert dfa.accepts(["S", "B", "D"])
        assert not dfa.accepts(["S", "A", "D"])

    def test_dead_state_detected(self):
        dfa = compile_("S A")
        assert dfa.dead is not None
        state = dfa.step(dfa.start, "B")
        assert dfa.is_dead(state)

    def test_unknown_symbol_raises(self):
        dfa = compile_("S A")
        with pytest.raises(RegexSyntaxError):
            dfa.step(dfa.start, "Z")

    def test_regex_mentioning_foreign_device_rejected(self):
        with pytest.raises(RegexSyntaxError):
            compile_regex(parse_regex("S .* Z"), ALPHABET)

    def test_live_states(self):
        dfa = compile_("S A D")
        alive = dfa.live_states()
        assert dfa.start in alive
        assert dfa.dead not in alive


class TestMinimization:
    def test_equivalent_expressions_same_size(self):
        a = compile_("S A | S B")
        b = compile_("S (A | B)")
        assert a.num_states == b.num_states

    def test_minimal_waypoint_size(self):
        # S .* W .* D needs 4 live states + dead = 5 (cf. Figure 4).
        dfa = compile_regex(parse_regex("S .* B .* D"), ALPHABET)
        assert dfa.num_states == 5

    def test_minimized_dfa_still_correct(self):
        dfa = compile_("(A|B)* C")
        assert dfa.accepts(["C"])
        assert dfa.accepts(["A", "B", "A", "C"])
        assert not dfa.accepts(["A", "C", "C"])


class TestNfaSimulation:
    def test_nfa_matches_dfa(self):
        regex = parse_regex("S (A|B)+ D?")
        nfa = build_nfa(regex)
        dfa = compile_regex(regex, ALPHABET)
        for path in (
            ["S", "A", "D"], ["S"], ["S", "B"], ["S", "B", "A"],
            ["S", "D"], ["A", "S"],
        ):
            assert nfa.matches(path) == dfa.accepts(path)


class TestProducts:
    def test_intersection(self):
        waypoint_b = compile_("S .* B .* D")
        short = compile_("S . . D")  # exactly 3 hops
        both = dfa_product(waypoint_b, short)
        # S,A,B,D passes through B and has exactly 3 hops → accepted.
        assert both.accepts(["S", "A", "B", "D"])
        assert both.accepts(["S", "B", "C", "D"])
        assert not both.accepts(["S", "B", "D"])  # only 2 hops
        assert not both.accepts(["S", "A", "C", "D"])  # no B

    def test_union(self):
        either = dfa_union(compile_("S A"), compile_("S B"))
        assert either.accepts(["S", "A"])
        assert either.accepts(["S", "B"])
        assert not either.accepts(["S", "C"])

    def test_alphabet_mismatch(self):
        a = compile_("S A")
        b = compile_regex(parse_regex("S"), ("S", "A"))
        with pytest.raises(RegexSyntaxError):
            dfa_product(a, b)


# ----------------------------------------------------------------------
# Property test: agreement with Python re.
# ----------------------------------------------------------------------
@st.composite
def regex_and_re(draw, depth=3):
    """Build a random path expression and the equivalent ``re`` pattern."""
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            sym = draw(st.sampled_from(ALPHABET))
            return sym, re.escape(sym)
        if choice == 1:
            return ".", "."
        members = draw(st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=3))
        inner = "".join(sorted(members))
        negated = draw(st.booleans())
        ours = ("[^" if negated else "[") + " ".join(sorted(members)) + "]"
        theirs = ("[^" if negated else "[") + inner + "]"
        return ours, theirs
    op = draw(st.sampled_from(["cat", "alt", "star", "leaf"]))
    if op == "leaf":
        return draw(regex_and_re(depth=0))
    if op == "star":
        ours, theirs = draw(regex_and_re(depth=depth - 1))
        return f"({ours})*", f"({theirs})*"
    left = draw(regex_and_re(depth=depth - 1))
    right = draw(regex_and_re(depth=depth - 1))
    if op == "cat":
        return f"{left[0]} {right[0]}", f"{left[1]}{right[1]}"
    return f"({left[0]}|{right[0]})", f"({left[1]}|{right[1]})"


class TestAgainstPythonRe:
    @given(regex_and_re(), st.lists(st.sampled_from(ALPHABET), max_size=6))
    @settings(max_examples=250, deadline=None)
    def test_agreement(self, pair, path):
        ours_text, re_text = pair
        dfa = compile_regex(parse_regex(ours_text), ALPHABET)
        pattern = re.compile(re_text + r"\Z")
        expected = pattern.match("".join(path)) is not None
        assert dfa.accepts(path) == expected
