"""Algorithm 1 (offline counting) against the brute-force trace oracle.

The central correctness property of the whole system: for any data plane,
the count set Algorithm 1 computes at the DPVNet source equals the set of
per-universe matching-trace counts obtained by exhaustively enumerating
universes (§A.1's correctness claim, checked mechanically)."""

import random

import pytest

from repro.automata import compile_regex, parse_regex
from repro.core.counting import CountExp
from repro.core.invariant import Atom, EndKind, Invariant, MatchKind, PathExpr
from repro.core.offline import count_sources
from repro.core.planner import Planner
from repro.dataplane import (
    Action,
    DevicePlane,
    Rule,
    Transform,
    count_matching_traces,
    enumerate_universes,
)
from repro.topology import Topology, fig2a_example, grid, ring
from tests.conftest import packet, random_dataplane


def source_counts_for(ctx, topo, planes, regex, space, ingress="S", simple=True):
    inv = Invariant(
        space,
        (ingress,),
        Atom(PathExpr.parse(regex, simple_only=simple), MatchKind.EXIST, CountExp(">=", 1)),
    )
    planner = Planner(topo, ctx)
    net = planner.build_dpvnet(inv)
    atoms = inv.atoms()
    return count_sources(net, planes, atoms, space)[ingress], net


class TestFig2Reference:
    def test_final_mapping_matches_paper(self, ctx, fig2a, fig2_planes, fig2_spaces):
        p1, p2, p3, p4 = fig2_spaces
        pieces, _net = source_counts_for(
            ctx, fig2a, fig2_planes, "S .* W .* D", p1
        )
        by_region = {}
        for region, cs in pieces:
            if region == (p2 | p4):
                by_region["P2∪P4"] = cs
            elif region == p3:
                by_region["P3"] = cs
        assert by_region["P2∪P4"] == ((1,),)
        assert by_region["P3"] == ((0,), (1,))

    def test_after_b_update_invariant_holds(self, ctx, fig2a, fig2_planes, fig2_spaces):
        """§2.2.3: B forwards P3∪P4 to W instead of D → count becomes 1."""
        p1, _p2, p3, p4 = fig2_spaces
        old = fig2_planes["B"].rules[0]
        fig2_planes["B"].replace_rule(
            old.rule_id, Rule(p3 | p4, Action.forward_all(["W"]), 10)
        )
        pieces, _net = source_counts_for(
            ctx, fig2a, fig2_planes, "S .* W .* D", p1
        )
        assert pieces == [(p1, ((1,),))]


class TestAgainstTraceOracle:
    def _check_agreement(self, ctx, topo, planes, regex, concrete_packets, ingress):
        dfa = compile_regex(parse_regex(regex), topo.devices)
        for pkt in concrete_packets:
            space = ctx.packet(**pkt)
            pieces, _ = source_counts_for(
                ctx, topo, planes, regex, space, ingress, simple=True
            )
            # A single concrete packet → exactly one piece.
            assert len(pieces) == 1
            algorithm_counts = sorted({vec[0] for vec in pieces[0][1]})
            universes = enumerate_universes(planes, ingress, pkt, max_hops=8)

            def simple_and_matches(path):
                return len(set(path)) == len(path) and dfa.accepts(path)

            oracle = count_matching_traces(universes, simple_and_matches)
            assert algorithm_counts == oracle, (
                f"mismatch for packet {pkt}: algorithm {algorithm_counts} vs "
                f"oracle {oracle}"
            )

    def test_fig2a_randomized_planes(self, ctx):
        topo = fig2a_example()
        prefixes = ["10.0.0.0/24", "10.0.1.0/24"]
        for seed in range(20):
            planes = random_dataplane(
                topo, ctx, prefixes, seed=seed, deliver_at={p: "D" for p in prefixes}
            )
            self._check_agreement(
                ctx, topo, planes, "S .* D",
                [packet("10.0.0.9"), packet("10.0.1.9")], "S",
            )

    def test_grid_randomized_planes(self, ctx):
        topo = grid(2, 3)
        prefixes = ["10.0.0.0/24"]
        for seed in range(12):
            planes = random_dataplane(
                topo, ctx, prefixes, seed=100 + seed,
                deliver_at={prefixes[0]: "g1_2"},
            )
            self._check_agreement(
                ctx, topo, planes, "g0_0 .* g1_2", [packet("10.0.0.1")], "g0_0"
            )

    def test_waypoint_regex_on_random_planes(self, ctx):
        topo = fig2a_example()
        prefixes = ["10.0.0.0/24"]
        for seed in range(12):
            planes = random_dataplane(
                topo, ctx, prefixes, seed=500 + seed,
                deliver_at={prefixes[0]: "D"},
            )
            self._check_agreement(
                ctx, topo, planes, "S .* W .* D", [packet("10.0.0.1")], "S"
            )


class TestDroppedEndCounting:
    def test_blackhole_counted(self, ctx, fig2a, fig2_planes, fig2_spaces):
        """Packets in P2 are dropped at B: the dropped-end count along S.*
        must be 1 (the [S,A,B] trace)."""
        p1, p2, _p3, _p4 = fig2_spaces
        inv = Invariant(
            p2,
            ("S",),
            Atom(
                PathExpr.parse("S .*", simple_only=True),
                MatchKind.EXIST,
                CountExp("==", 0),
                EndKind.DROPPED,
            ),
        )
        planner = Planner(fig2a, ctx)
        result = planner.verify(inv, fig2_planes)
        assert not result.holds
        (violation,) = result.violations
        assert violation.counts == ((1,),)


class TestTransformCounting:
    def test_counting_through_rewrite(self, ctx):
        """A rewrites port 80→8080 toward B; B only forwards 8080."""
        topo = Topology("t")
        topo.add_link("S", "A")
        topo.add_link("A", "B")
        planes = {n: DevicePlane(n, ctx) for n in "SAB"}
        p80 = ctx.value("dst_port", 80)
        p8080 = ctx.value("dst_port", 8080)
        planes["S"].install_many([Rule(p80, Action.forward_all(["A"]), 1)])
        planes["A"].install_many(
            [Rule(p80, Action.forward_all(["B"], transform=Transform.set_fields(dst_port=8080)), 1)]
        )
        planes["B"].install_many([Rule(p8080, Action.deliver(), 1)])
        pieces, _ = source_counts_for(ctx, topo, planes, "S A B", p80, "S")
        assert pieces == [(p80, ((1,),))]

    def test_without_rewrite_count_zero(self, ctx):
        topo = Topology("t")
        topo.add_link("S", "A")
        topo.add_link("A", "B")
        planes = {n: DevicePlane(n, ctx) for n in "SAB"}
        p80 = ctx.value("dst_port", 80)
        p8080 = ctx.value("dst_port", 8080)
        planes["S"].install_many([Rule(p80, Action.forward_all(["A"]), 1)])
        planes["A"].install_many([Rule(p80, Action.forward_all(["B"]), 1)])
        planes["B"].install_many([Rule(p8080, Action.deliver(), 1)])
        pieces, _ = source_counts_for(ctx, topo, planes, "S A B", p80, "S")
        assert pieces == [(p80, ((0,),))]


class TestMultiAtomCounting:
    def test_multicast_joint_counts(self, ctx):
        """ALL-split to two destinations: joint vector (1, 1)."""
        from repro.core.library import multicast

        topo = Topology("t")
        topo.add_link("S", "A")
        topo.add_link("A", "D")
        topo.add_link("A", "E")
        planes = {n: DevicePlane(n, ctx) for n in "SADE"}
        space = ctx.ip_prefix("10.0.0.0/24")
        planes["S"].install_many([Rule(space, Action.forward_all(["A"]), 1)])
        planes["A"].install_many([Rule(space, Action.forward_all(["D", "E"]), 1)])
        planes["D"].install_many([Rule(space, Action.deliver(), 1)])
        planes["E"].install_many([Rule(space, Action.deliver(), 1)])
        inv = multicast(space, "S", ["D", "E"])
        planner = Planner(topo, ctx)
        result = planner.verify(inv, planes)
        assert result.holds
        pieces = result.source_counts["S"]
        assert pieces == [(space, ((1, 1),))]

    def test_anycast_joint_counts_exclude_false_positive(self, ctx):
        """The §4.3 anycast example: joint counting gives (1,0) and (0,1),
        never the cross-product phantom (1,1)/(0,0)."""
        from repro.core.library import anycast
        from repro.topology import anycast_example

        topo = anycast_example()
        planes = {n: DevicePlane(n, ctx) for n in topo.devices}
        space = ctx.ip_prefix("10.1.0.0/24")
        planes["S"].install_many([Rule(space, Action.forward_all(["A"]), 1)])
        planes["A"].install_many([Rule(space, Action.forward_any(["D", "E"]), 1)])
        planes["D"].install_many([Rule(space, Action.deliver(), 1)])
        planes["E"].install_many([Rule(space, Action.deliver(), 1)])
        inv = anycast(space, "S", ["D", "E"])
        planner = Planner(topo, ctx)
        result = planner.verify(inv, planes)
        assert result.holds
        (region, cs) = result.source_counts["S"][0]
        assert set(cs) == {(0, 1), (1, 0)}
