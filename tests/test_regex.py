"""Path-expression parsing and combinators."""

import pytest

from repro.automata.regex import (
    ANY,
    EPSILON,
    Alternate,
    AnySymbol,
    Concat,
    Star,
    Symbol,
    SymbolClass,
    alternate,
    concat,
    literal_path,
    optional,
    parse_regex,
    plus,
    repeat,
    star,
)
from repro.errors import RegexSyntaxError


class TestParser:
    def test_single_device(self):
        assert parse_regex("S") == Symbol("S")

    def test_compact_waypoint_form(self):
        node = parse_regex("S.*W.*D")
        assert node == concat(
            Symbol("S"), star(ANY), Symbol("W"), star(ANY), Symbol("D")
        )

    def test_spaced_form_equivalent(self):
        assert parse_regex("S .* W .* D") == parse_regex("S.*W.*D")

    def test_alternation(self):
        node = parse_regex("S D | S . D")
        assert isinstance(node, Alternate)
        assert len(node.options) == 2

    def test_multi_char_device_names(self):
        node = parse_regex("edge_0_1 .* core-3")
        assert node == concat(Symbol("edge_0_1"), star(ANY), Symbol("core-3"))

    def test_class(self):
        node = parse_regex("[A B]")
        assert node == SymbolClass(frozenset({"A", "B"}), negated=False)

    def test_negated_class(self):
        node = parse_regex("[^A B]")
        assert node == SymbolClass(frozenset({"A", "B"}), negated=True)

    def test_plus_and_optional(self):
        assert parse_regex("A+") == plus(Symbol("A"))
        assert parse_regex("A?") == optional(Symbol("A"))

    def test_repetition(self):
        assert parse_regex("A{2,3}") == repeat(Symbol("A"), 2, 3)
        assert parse_regex("A{2}") == repeat(Symbol("A"), 2, 2)

    def test_nested_groups(self):
        node = parse_regex("S (A | B)* D")
        assert isinstance(node, Concat)

    def test_devices_collection(self):
        node = parse_regex("S .* [^W X] (A|B) D")
        assert node.devices() == frozenset({"S", "W", "X", "A", "B", "D"})


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "(", "S)", "[A", "[ ]", "A{x}", "A{3,1}", "S $"],
    )
    def test_malformed(self, text):
        with pytest.raises(RegexSyntaxError):
            parse_regex(text)


class TestCombinators:
    def test_concat_flattens_and_drops_epsilon(self):
        node = concat(Symbol("A"), EPSILON, concat(Symbol("B"), Symbol("C")))
        assert node == Concat((Symbol("A"), Symbol("B"), Symbol("C")))

    def test_concat_of_nothing_is_epsilon(self):
        assert concat() == EPSILON

    def test_alternate_dedupes(self):
        assert alternate(Symbol("A"), Symbol("A")) == Symbol("A")

    def test_star_idempotent(self):
        inner = star(Symbol("A"))
        assert star(inner) == inner

    def test_star_of_epsilon(self):
        assert star(EPSILON) == EPSILON

    def test_literal_path(self):
        assert literal_path(["S", "A", "D"]) == concat(
            Symbol("S"), Symbol("A"), Symbol("D")
        )

    def test_repeat_bounds_validation(self):
        with pytest.raises(RegexSyntaxError):
            repeat(Symbol("A"), 3, 1)

    def test_str_roundtrips_through_parser(self):
        for text in ("S .* W .* D", "S D|S . D", "[^A B] C+", "(A|B){1,2} D"):
            node = parse_regex(text)
            assert parse_regex(str(node)) == node
