"""Baseline incremental-vs-snapshot consistency.

Property: after any sequence of incremental updates, a tool's view of the
data plane must yield the same verdict as a fresh snapshot verification of
the final state — i.e., the incremental EC maintenance (atom painting,
trie upkeep, partition refinement) never drifts from ground truth."""

import random

import pytest

from repro.baselines import (
    ALL_BASELINES,
    ApKeepVerifier,
    DeltaNetVerifier,
    FlashVerifier,
    VeriFlowVerifier,
)
from repro.dataplane import Action, DevicePlane, Rule
from repro.datasets import build_dataset

INCREMENTAL_TOOLS = [
    ApKeepVerifier, DeltaNetVerifier, VeriFlowVerifier, FlashVerifier,
]


def fresh_planes(ds):
    planes = {}
    for dev, rules in ds.rules_by_device.items():
        plane = DevicePlane(dev, ds.ctx)
        plane.install_many([Rule(r.match, r.action, r.priority) for r in rules])
        planes[dev] = plane
    return planes


def apply_random_updates(ds, tool, planes, seed, count=6):
    """Random re-point / drop / restore churn through the tool's
    incremental path; returns the last report."""
    rng = random.Random(seed)
    devices = sorted(d for d, p in planes.items() if p.num_rules)
    report = None
    for _ in range(count):
        dev = rng.choice(devices)
        plane = planes[dev]
        victim = rng.choice(plane.rules)
        neighbors = ds.topology.neighbors(dev)
        if victim.action.is_drop or rng.random() < 0.3 or not neighbors:
            action = Action.drop()
        else:
            action = Action.forward_all([rng.choice(neighbors)])
        if action == victim.action:
            continue
        changed = Rule(victim.match, action, victim.priority)
        report = tool.incremental_verify(
            dev, install=changed, remove_rule_id=victim.rule_id
        )
    return report


@pytest.mark.parametrize("tool_cls", INCREMENTAL_TOOLS, ids=lambda c: c.name)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_incremental_matches_snapshot(tool_cls, seed):
    ds = build_dataset("INet2", pair_limit=6, seed=2)

    # Run the churn through the incremental path.
    tool = tool_cls(ds.topology, ds.ctx, ds.queries)
    planes = fresh_planes(ds)
    tool.burst_verify(planes)
    apply_random_updates(ds, tool, planes, seed)

    # Ground truth: a fresh tool snapshotting the *final* planes.
    # (Planes were mutated in place by incremental_verify.)
    oracle = tool_cls(ds.topology, ds.ctx, ds.queries)
    snapshot_report = oracle.burst_verify(planes)

    # The tool's own full recheck of its maintained state must agree with
    # the fresh-snapshot verdict.
    maintained_errors = tool._snapshot_compute()
    assert bool(maintained_errors) == bool(snapshot_report.errors), (
        f"{tool_cls.name} drifted: maintained={maintained_errors[:2]} "
        f"snapshot={snapshot_report.errors[:2]}"
    )


@pytest.mark.parametrize("tool_cls", INCREMENTAL_TOOLS, ids=lambda c: c.name)
def test_break_detected_immediately_not_only_on_snapshot(tool_cls):
    """The incremental report itself (not just a later snapshot) must flag a
    break it can see."""
    ds = build_dataset("INet2", pair_limit=6, seed=2)
    tool = tool_cls(ds.topology, ds.ctx, ds.queries)
    planes = fresh_planes(ds)
    assert tool.burst_verify(planes).holds
    query = ds.queries[0]
    target = ds.ctx.ip_prefix(query.prefix)
    plane = planes[query.ingress]
    victim = next(r for r in plane.rules if r.match == target)
    broken = Rule(victim.match, Action.drop(), victim.priority)
    report = tool.incremental_verify(
        query.ingress, install=broken, remove_rule_id=victim.rule_id
    )
    assert not report.holds
