"""BDD wire format: roundtrips, cross-manager decoding, error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    HeaderLayout,
    PacketSpaceContext,
    deserialize_predicate,
    serialize_predicate,
)
from repro.bdd.serialize import decode_varint, encode_varint
from repro.errors import SerializationError


class TestVarint:
    @given(st.integers(0, 2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, value):
        out = bytearray()
        encode_varint(value, out)
        decoded, pos = decode_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_varint(-1, bytearray())

    def test_truncated(self):
        out = bytearray()
        encode_varint(300, out)
        with pytest.raises(SerializationError):
            decode_varint(bytes(out[:-1] + bytes([0x80])), 0)


class TestPredicateRoundtrip:
    def test_simple_roundtrip(self, ctx):
        pred = ctx.ip_prefix("10.0.0.0/23") & ctx.value("dst_port", 80)
        data = serialize_predicate(pred)
        back = deserialize_predicate(ctx, data)
        assert back == pred

    def test_terminals(self, ctx):
        assert deserialize_predicate(ctx, serialize_predicate(ctx.empty)) == ctx.empty
        assert (
            deserialize_predicate(ctx, serialize_predicate(ctx.universe))
            == ctx.universe
        )

    def test_cross_manager_roundtrip(self):
        """Device A serializes, device B (separate manager) deserializes."""
        sender = PacketSpaceContext()
        receiver = PacketSpaceContext()
        pred = sender.ip_prefix("172.16.0.0/12") | sender.value("proto", 6)
        data = serialize_predicate(pred)
        back = deserialize_predicate(receiver, data)
        # Semantically identical: same model count, same samples behaviour.
        assert back.count() == pred.count()
        data2 = serialize_predicate(back)
        assert deserialize_predicate(sender, data2) == pred

    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 32)),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, prefixes):
        ctx = PacketSpaceContext(HeaderLayout.dst_only())
        pred = ctx.empty
        for octet, length in prefixes:
            pred = pred | ctx.prefix("dst_ip", octet << 24, length)
        assert deserialize_predicate(ctx, serialize_predicate(pred)) == pred

    def test_wire_size_reasonable(self, ctx):
        pred = ctx.ip_prefix("10.0.0.0/23")
        # A 23-bit prefix chain: well under a kilobyte on the wire.
        assert len(serialize_predicate(pred)) < 300


class TestErrors:
    def test_trailing_garbage(self, ctx):
        data = serialize_predicate(ctx.ip_prefix("10.0.0.0/24")) + b"\x00"
        with pytest.raises(SerializationError):
            deserialize_predicate(ctx, data)

    def test_variable_out_of_range(self, ctx):
        small = PacketSpaceContext(HeaderLayout([("f", 2)]))
        data = serialize_predicate(ctx.value("src_port", 1))
        with pytest.raises(SerializationError):
            deserialize_predicate(small, data)

    def test_empty_stream(self, ctx):
        with pytest.raises(SerializationError):
            deserialize_predicate(ctx, b"")
