"""FIB text format: parse, format, roundtrip, errors."""

import pytest

from repro.dataplane import Action, DevicePlane, Rule, format_fib_text, parse_fib_text
from repro.errors import DataPlaneError
from tests.conftest import packet

SAMPLE = """
# a comment line
# device S
200 10.0.0.0/24 ALL A,B
100 10.0.0.0/23 ANY B
10  0.0.0.0/0   DROP

# device D
200 10.0.0.0/23 ALL @ext
"""


class TestParse:
    def test_basic(self, ctx):
        planes = parse_fib_text(ctx, SAMPLE)
        assert sorted(planes) == ["D", "S"]
        assert planes["S"].num_rules == 3
        assert planes["S"].fwd_packet(packet("10.0.0.5")) == Action.forward_all(["A", "B"])
        assert planes["S"].fwd_packet(packet("10.0.1.5")) == Action.forward_any(["B"])
        assert planes["S"].fwd_packet(packet("192.168.0.1")) == Action.drop()
        assert planes["D"].fwd_packet(packet("10.0.0.5")).delivers

    @pytest.mark.parametrize(
        "text",
        [
            "200 10.0.0.0/24 ALL A",              # rule before device header
            "# device S\nxx 10.0.0.0/24 ALL A",   # bad priority
            "# device S\n200 10.0.0.0/24 ALL",    # missing hops
            "# device S\n200 10.0.0.0/24 BOTH A", # unknown type
            "# device S\n200 10.0.0.0/24",        # too few fields
        ],
    )
    def test_malformed(self, ctx, text):
        with pytest.raises(DataPlaneError):
            parse_fib_text(ctx, text)


class TestRoundtrip:
    def test_format_then_parse(self, ctx):
        planes = parse_fib_text(ctx, SAMPLE)
        text = format_fib_text(planes)
        again = parse_fib_text(ctx, text)
        for name, plane in planes.items():
            for probe in ("10.0.0.5", "10.0.1.5", "8.8.8.8"):
                assert plane.fwd_packet(packet(probe)) == again[name].fwd_packet(
                    packet(probe)
                )

    def test_unrepresentable_match_commented(self, ctx):
        plane = DevicePlane("X", ctx)
        weird = ctx.value("dst_port", 80)  # not a dst_ip prefix
        plane.install_many([Rule(weird, Action.forward_all(["A"]), 5)])
        text = format_fib_text({"X": plane})
        assert "unrepresentable" in text
