"""Predicate algebra and the partition-refinement helper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import HeaderLayout, PacketSpaceContext


@pytest.fixture
def small_ctx():
    return PacketSpaceContext(HeaderLayout([("f", 6)]))


class TestAlgebra:
    def test_identities(self, ctx):
        p = ctx.ip_prefix("10.0.0.0/24")
        assert (p & ctx.universe) == p
        assert (p | ctx.empty) == p
        assert (p - p).is_empty
        assert (p ^ p).is_empty
        assert (p | ~p).is_universe

    def test_cross_context_rejected(self, ctx):
        other = PacketSpaceContext()
        with pytest.raises(ValueError):
            ctx.ip_prefix("10.0.0.0/24") & other.ip_prefix("10.0.0.0/24")

    def test_covers_and_overlaps(self, ctx):
        p23 = ctx.ip_prefix("10.0.0.0/23")
        p24 = ctx.ip_prefix("10.0.0.0/24")
        other = ctx.ip_prefix("192.168.0.0/16")
        assert p23.covers(p24)
        assert not p24.covers(p23)
        assert p23.overlaps(p24)
        assert not p23.overlaps(other)

    def test_bool_and_eq(self, ctx):
        assert not ctx.empty
        assert ctx.universe
        assert ctx.ip_prefix("1.0.0.0/8") == ctx.ip_prefix("1.0.0.0/8")
        assert hash(ctx.ip_prefix("1.0.0.0/8")) == hash(ctx.ip_prefix("1.0.0.0/8"))

    def test_ip_prefix_plain_address(self, ctx):
        host = ctx.ip_prefix("10.0.0.1")
        assert host.count() == 1 << (ctx.layout.num_vars - 32)

    def test_union_intersection_helpers(self, ctx):
        preds = [ctx.value("proto", v) for v in (6, 17)]
        union = ctx.union(preds)
        assert all(union.covers(p) for p in preds)
        inter = ctx.intersection(preds)
        assert inter.is_empty

    def test_sample_is_member(self, ctx):
        p = ctx.ip_prefix("10.0.0.0/24") & ctx.value("dst_port", 80)
        pkt = p.sample()
        assert ctx.packet(**pkt).node  # non-empty
        assert p.covers(ctx.packet(**pkt))

    def test_packet_constructor(self, ctx):
        p = ctx.packet(dst_port=53, proto=17)
        assert p.count() == 1 << (ctx.layout.num_vars - 24)


class TestRefine:
    def test_refine_stays_partition(self, small_ctx):
        ctx = small_ctx
        partition = [ctx.universe]
        for value in (1, 5, 9):
            partition = ctx.refine(partition, ctx.range_("f", 0, value))
        union = ctx.union(partition)
        assert union.is_universe
        for i, a in enumerate(partition):
            for b in partition[i + 1:]:
                assert not a.overlaps(b)

    def test_refine_empty_splitter_is_noop(self, small_ctx):
        ctx = small_ctx
        partition = [ctx.range_("f", 0, 31), ctx.range_("f", 32, 63)]
        assert ctx.refine(partition, ctx.empty) == partition

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_refine_partition_property(self, ranges):
        ctx = PacketSpaceContext(HeaderLayout([("f", 6)]))
        partition = [ctx.universe]
        for a, b in ranges:
            lo, hi = min(a, b), max(a, b)
            partition = ctx.refine(partition, ctx.range_("f", lo, hi))
        # Disjoint and covering.
        total = sum(p.count() for p in partition)
        assert total == 64
        assert ctx.union(partition).is_universe


class TestStats:
    def test_stats_keys(self, ctx):
        ctx.ip_prefix("10.0.0.0/8")
        stats = ctx.stats()
        assert stats["num_vars"] == ctx.layout.num_vars
        assert stats["nodes"] >= 2

    def test_size_monotone_under_structure(self, ctx):
        p = ctx.ip_prefix("10.0.0.0/24")
        assert p.size() >= 1
        assert ctx.universe.size() == 0  # terminal only
