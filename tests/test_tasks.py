"""Task descriptors: scene-aware acceptance and decomposition metadata."""

import pytest

from repro.core.tasks import NodeTask, NeighborRef


class TestAcceptInScene:
    def test_no_labels_accepts_everywhere(self):
        node = NodeTask(1, "A1", "A", accept=(True, False))
        assert node.accept_in_scene(None) == (True, False)
        assert node.accept_in_scene(3) == (True, False)

    def test_labeled_component_restricted(self):
        node = NodeTask(
            1, "A1", "A", accept=(True, True),
            accept_scenes={0: frozenset({0, 2})},
        )
        # Component 0 only accepts in scenes 0 and 2; component 1 always.
        assert node.accept_in_scene(None) == (True, True)   # scene None → 0
        assert node.accept_in_scene(0) == (True, True)
        assert node.accept_in_scene(1) == (False, True)
        assert node.accept_in_scene(2) == (True, True)

    def test_false_flag_stays_false(self):
        node = NodeTask(
            1, "A1", "A", accept=(False,),
            accept_scenes={0: frozenset({1})},
        )
        assert node.accept_in_scene(1) == (False,)

    def test_downstream_devices(self):
        node = NodeTask(
            1, "A1", "A", accept=(True,),
            downstream=[NeighborRef(2, "B"), NeighborRef(3, "C")],
        )
        assert node.downstream_devices() == ["B", "C"]
