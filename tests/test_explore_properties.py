"""Property-based exploration: random families, certified outcomes.

Seeded-random scenario families over random (possibly buggy) fig2a data
planes, two properties per family:

* every counterexample the explorer emits re-validates under replay —
  the traced re-execution is byte-identical to the recording (the
  in-process path here; the CLI/CI path replays the self-contained file);
* every *safe* scenario re-runs clean under both predicate-index modes,
  with byte-identical verdict outcomes ("safe" is not an artifact of the
  region algebra).

Plain ``random.Random`` seeds stand in for hypothesis (not a baked-in
dependency): each seed names one exact family and one exact data plane.
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Rule
from repro.explore import (
    FaultElement,
    ScenarioFamily,
    explore_family,
    outcome_key,
)
from repro.sim import ReliableChannel, TulkunRunner, run_script
from repro.topology import fig2a_example
from tests.conftest import build_linear_fig2_planes, random_dataplane

pytestmark = pytest.mark.scenario

SEEDS = (11, 23, 47)


def linear_harness(predicate_index="atoms"):
    """Fresh deployment of the *correct* linear fig2a plane (all HOLDS)."""

    def harness(tracer=None, channel=None):
        ctx = PacketSpaceContext()
        topology = fig2a_example()
        p1 = ctx.ip_prefix("10.0.0.0/23")
        invariants = [
            reachability(p1, "S", "D"),
            waypoint_reachability(p1, "S", "W", "D"),
        ]
        if channel is None:
            channel = ReliableChannel()
        runner = TulkunRunner(
            topology,
            ctx,
            invariants,
            cpu_scale=0.0,
            predicate_index=predicate_index,
            tracer=tracer,
            channel=channel,
        )
        planes = build_linear_fig2_planes(ctx)
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
            for dev, plane in planes.items()
        }
        return runner, rules

    return harness


def random_harness(seed, predicate_index="atoms"):
    """Fresh deployment of the seed's random fig2a data plane."""

    def harness(tracer=None, channel=None):
        ctx = PacketSpaceContext()
        topology = fig2a_example()
        p1 = ctx.ip_prefix("10.0.0.0/23")
        invariants = [
            reachability(p1, "S", "D"),
            waypoint_reachability(p1, "S", "W", "D"),
        ]
        planes = random_dataplane(
            topology, ctx, ["10.0.0.0/23"], seed, deliver_at={"10.0.0.0/23": "D"}
        )
        if channel is None:
            channel = ReliableChannel()
        runner = TulkunRunner(
            topology,
            ctx,
            invariants,
            cpu_scale=0.0,
            predicate_index=predicate_index,
            tracer=tracer,
            channel=channel,
        )
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
            for dev, plane in planes.items()
        }
        return runner, rules

    return harness


def random_family(seed) -> ScenarioFamily:
    """A seeded-random family: 2-3 elements of mixed kinds."""
    rng = random.Random(seed * 7919)
    topology = fig2a_example()
    links = sorted((link.a, link.b) for link in topology.links())
    devices = sorted(topology.devices)
    elements = []
    for _ in range(rng.randint(2, 3)):
        kind = rng.choice(("link", "link", "device", "drain"))
        while True:
            if kind == "link":
                element = FaultElement(
                    "link", rng.choice(links), recover=rng.random() < 0.7
                )
            else:
                element = FaultElement(
                    kind, (rng.choice(devices),), recover=rng.random() < 0.7
                )
            if element not in elements:
                break
        elements.append(element)
    return ScenarioFamily(elements=tuple(elements), max_faults=2)


@pytest.mark.parametrize("seed", SEEDS)
def test_counterexamples_revalidate_under_replay(seed):
    family = random_family(seed)
    harness = random_harness(seed)
    report = explore_family(family, harness, max_counterexamples=8)
    # Coverage bookkeeping is exact: nothing silently dropped.
    assert report.explored + report.pruned + report.skipped == (
        report.exhaustive_scenarios
    )
    for cex in report.counterexamples:
        assert cex.replay_ok, (
            f"seed {seed}: counterexample "
            f"{[s.describe() for s in cex.steps]} diverged under replay"
        )
        # The trace carries the script, so a fresh replay is self-driving.
        assert cex.trace.scenario == "script"
        assert len(cex.trace.script) == len(cex.steps)


@pytest.mark.parametrize("seed", SEEDS)
def test_safe_scenarios_are_safe_in_both_index_modes(seed):
    family = random_family(seed)
    report = explore_family(
        family, random_harness(seed), minimize=False, max_counterexamples=0
    )
    safe = [r for r in report.results if not r.failing]
    if not safe:
        pytest.skip(f"seed {seed}: family has no safe scenario")
    for result in safe[:6]:  # bound the re-run cost per seed
        outcomes = {}
        for mode in ("atoms", "bdd"):
            runner, rules = random_harness(seed, predicate_index=mode)()
            trajectory = run_script(runner, rules, result.steps)
            final = trajectory[-1]
            assert final.converged
            assert all(s == "HOLDS" for s in final.statuses.values())
            outcomes[mode] = outcome_key(runner)
            runner.close()
        assert outcomes["atoms"] == outcomes["bdd"]


def test_recovered_faults_on_correct_plane_end_safe_in_both_modes():
    # Off-path fault with recovery on the healthy plane: every scenario
    # must end converged and HOLDS, byte-identically across index modes.
    family = ScenarioFamily(
        elements=(
            FaultElement("link", ("S", "A")),
            FaultElement("drain", ("B",)),
        ),
        max_faults=2,
    )
    report = explore_family(
        family, linear_harness(), minimize=False, max_counterexamples=0
    )
    assert report.violated == 0
    for result in report.results:
        outcomes = {}
        for mode in ("atoms", "bdd"):
            runner, rules = linear_harness(predicate_index=mode)()
            final = run_script(runner, rules, result.steps)[-1]
            assert final.converged
            assert all(s == "HOLDS" for s in final.statuses.values())
            outcomes[mode] = outcome_key(runner)
            runner.close()
        assert outcomes["atoms"] == outcomes["bdd"]
