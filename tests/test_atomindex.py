"""Atom-refinement unit suite: the dynamic atomic-predicate index.

The invariants that make atoms a sound stand-in for BDD predicates on the
DVM hot path:

* the leaf atoms always partition packet space (disjoint, covering);
* ``atomize`` → ``to_predicate`` is the identity on denotations, and the
  result is the *canonical* ROBDD (same node as the original predicate);
* AtomSet algebra agrees with Predicate algebra operation for operation;
* splits never change what an existing AtomSet denotes, and its O(1) hash
  survives both splits and merges (the XOR-token invariant);
* ``compact`` merges sibling atoms no live set distinguishes, and engine
  GC sweeps keep the conversion caches consistent.
"""

import gc as pygc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.core.atomindex import AtomIndex, AtomSet


def small_ctx():
    return PacketSpaceContext(HeaderLayout([("f", 6)]))


@pytest.fixture
def sctx():
    return small_ctx()


@pytest.fixture
def index(sctx):
    return sctx.atom_index()


def leaf_extents(index):
    return [
        index._extent[aid]
        for aid in index._extent
        if aid not in index._children
    ]


class TestPartitionInvariant:
    def test_starts_as_one_universe_atom(self, index):
        assert index.num_atoms == 1
        assert index.universe().to_predicate().is_universe

    def test_leaves_partition_packet_space(self, sctx, index):
        for lo, hi in [(0, 15), (8, 40), (3, 3), (20, 63)]:
            index.atomize(sctx.range_("f", lo, hi))
        leaves = leaf_extents(index)
        assert len(leaves) == index.num_atoms
        union = sctx.union(leaves)
        assert union.is_universe
        for i, a in enumerate(leaves):
            for b in leaves[i + 1:]:
                assert not a.overlaps(b)

    def test_atomize_is_lazy(self, sctx, index):
        index.atomize(sctx.range_("f", 0, 31))
        assert index.num_atoms == 2  # one boundary, one split
        # A predicate along the same boundary refines nothing further.
        index.atomize(sctx.range_("f", 32, 63))
        assert index.num_atoms == 2

    def test_empty_and_universe(self, sctx, index):
        assert index.atomize(sctx.empty).is_empty
        assert index.atomize(sctx.universe).is_universe


class TestBoundaryConversion:
    def test_round_trip_is_canonical(self, sctx, index):
        # atomize → to_predicate must return the *same* ROBDD node, so wire
        # bytes cannot depend on which mode produced a region.
        for lo, hi in [(0, 15), (10, 50), (0, 63), (7, 7)]:
            pred = sctx.range_("f", lo, hi)
            aset = index.atomize(pred)
            assert aset.to_predicate().node == pred.node

    def test_round_trip_after_later_refinement(self, sctx, index):
        pred = sctx.range_("f", 0, 31)
        aset = index.atomize(pred)
        # Refine across the region's interior, then convert.
        index.atomize(sctx.range_("f", 16, 47))
        assert aset.to_predicate().node == pred.node


class TestAlgebraAgreement:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 63)),
            min_size=2, max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_ops_match_bdd_ops(self, ranges):
        ctx = small_ctx()
        index = ctx.atom_index()
        preds = [ctx.range_("f", min(a, b), max(a, b)) for a, b in ranges]
        asets = [index.atomize(p) for p in preds]
        for (pa, aa), (pb, ab) in zip(
            zip(preds, asets), zip(preds[1:], asets[1:])
        ):
            assert (aa & ab).to_predicate() == (pa & pb)
            assert (aa | ab).to_predicate() == (pa | pb)
            assert (aa - ab).to_predicate() == (pa - pb)
            assert (aa ^ ab).to_predicate() == (pa ^ pb)
            assert aa.overlaps(ab) == pa.overlaps(pb)
            assert aa.covers(ab) == pa.covers(pb)
            assert (aa == ab) == (pa == pb)

    def test_identity_fast_paths(self, sctx, index):
        big = index.atomize(sctx.range_("f", 0, 47))
        small = index.atomize(sctx.range_("f", 8, 15))
        assert (big & small) is small
        assert (big | small) is big
        assert (small - big).is_empty

    def test_mixing_indexes_rejected(self, sctx):
        other = small_ctx()
        a = sctx.atom_index().atomize(sctx.range_("f", 0, 7))
        b = other.atom_index().atomize(other.range_("f", 0, 7))
        with pytest.raises(ValueError):
            a & b

    def test_non_atomset_rejected(self, sctx, index):
        aset = index.atomize(sctx.range_("f", 0, 7))
        with pytest.raises(TypeError):
            aset & sctx.range_("f", 0, 7)


class TestSplitStability:
    def test_denotation_survives_splits(self, sctx, index):
        pred = sctx.range_("f", 0, 31)
        aset = index.atomize(pred)
        before = len(aset)
        # Split the region's atoms from the outside.
        index.atomize(sctx.range_("f", 8, 23))
        index.atomize(sctx.range_("f", 28, 35))
        assert len(aset) > before  # renormalized to finer leaves
        assert aset.to_predicate() == pred

    def test_hash_survives_splits(self, sctx, index):
        aset = index.atomize(sctx.range_("f", 0, 31))
        h = hash(aset)
        index.atomize(sctx.range_("f", 16, 47))
        aset.ids()  # force renormalization
        assert hash(aset) == h

    def test_equal_denotations_equal_hash_across_versions(self, sctx, index):
        pred = sctx.range_("f", 0, 31)
        early = index.atomize(pred)
        index.atomize(sctx.range_("f", 16, 47))  # refine
        late = index.atomize(pred)
        assert early == late
        assert hash(early) == hash(late)

    def test_token_xor_invariant(self, sctx, index):
        index.atomize(sctx.range_("f", 0, 31))
        for parent, (c1, c2) in index._children.items():
            if c1 in index._token and c2 in index._token:
                assert index._token[parent] == (
                    index._token[c1] ^ index._token[c2]
                )


class TestCompact:
    def test_merges_undistinguished_atoms(self, sctx, index):
        aset = index.atomize(sctx.range_("f", 0, 31))
        index.atomize(sctx.range_("f", 8, 15))  # refines inside the region
        refined = index.num_atoms
        assert refined > 2
        index.splits += 0  # no-op; compact gates on the splits counter
        merged = index.compact()
        # The inner boundary is distinguished by no live set once its
        # AtomSet is gone (atomize caches hold plain ids, not live sets).
        assert merged > 0
        assert index.num_atoms < refined
        # The surviving set still denotes the original region.
        assert aset.to_predicate() == sctx.range_("f", 0, 31)

    def test_live_sets_block_merging(self, sctx, index):
        outer = index.atomize(sctx.range_("f", 0, 31))
        inner = index.atomize(sctx.range_("f", 8, 15))
        index.compact()
        # ``inner`` is live, so its boundary must survive compaction.
        assert inner.to_predicate() == sctx.range_("f", 8, 15)
        assert outer.to_predicate() == sctx.range_("f", 0, 31)
        assert not (outer - inner).overlaps(inner)

    def test_steady_state_compact_is_free(self, sctx, index):
        index.atomize(sctx.range_("f", 0, 31))
        index.compact()
        before = index.merges
        assert index.compact() == 0  # no splits since: gated out
        assert index.merges == before

    def test_partition_invariant_after_compact(self, sctx, index):
        keep = index.atomize(sctx.range_("f", 0, 15))
        index.atomize(sctx.range_("f", 4, 7))
        index.atomize(sctx.range_("f", 32, 47))
        pygc.collect()
        index.compact()
        leaves = leaf_extents(index)
        assert sctx.union(leaves).is_universe
        for i, a in enumerate(leaves):
            for b in leaves[i + 1:]:
                assert not a.overlaps(b)
        assert keep.to_predicate() == sctx.range_("f", 0, 15)


class TestEngineGcIntegration:
    def test_sweep_preserves_conversions(self, sctx, index):
        preds = [sctx.range_("f", lo, lo + 7) for lo in range(0, 48, 8)]
        asets = [index.atomize(p) for p in preds]
        sctx.mgr.collect()
        for pred, aset in zip(preds, asets):
            assert aset.to_predicate() == pred
            # Re-atomizing after the sweep agrees with the live set.
            assert index.atomize(pred) == aset

    def test_sweep_rekeys_atomize_cache(self, sctx, index):
        pred = sctx.range_("f", 3, 40)
        aset = index.atomize(pred)  # held live: blocks the post-GC merge
        calls_before = index.atomize_calls
        hits_before = index.atomize_hits
        sctx.mgr.collect()
        assert index.atomize(pred) == aset
        assert index.atomize_calls == calls_before + 1
        # The rekeyed cache entry survives the sweep: still a hit.
        assert index.atomize_hits == hits_before + 1


class TestProfile:
    def test_profile_counters(self, sctx, index):
        index.atomize(sctx.range_("f", 0, 31))
        snap = index.profile()
        assert snap["atoms"] == index.num_atoms
        assert snap["splits"] >= 1
        assert snap["atomize_calls"] >= 1


class TestResolveFastPath:
    """Version-matched sets must not pay any resolution work.

    The frozenset representation re-resolved every operand on every
    coerce — a `_leaves_of` forest walk per id even when nothing had
    split.  The packed representation's contract: once a set has
    renormalized to the current version, algebra on it does no resolution
    at all, and even the slow path is a rewrite-table lookup (counted by
    ``index.resolves``), never a forest walk.
    """

    def test_version_match_skips_resolution(self, sctx, index):
        a = index.atomize(sctx.range_("f", 0, 31))
        b = index.atomize(sctx.range_("f", 16, 47))
        a.mask(), b.mask()  # renormalize once after the mutual splits

        walks = {"count": 0}
        real = index._leaves_of

        def counting(aid):
            walks["count"] += 1
            return real(aid)

        index._leaves_of = counting
        resolves_before = index.resolves
        for _ in range(50):
            assert (a & b) == (b & a)
            assert (a | b).covers(a)
            assert not (a - a)
            assert a.overlaps(b)
        assert walks["count"] == 0, "steady-state algebra walked the forest"
        assert index.resolves == resolves_before, (
            "steady-state algebra hit the stale-bit slow path"
        )

    def test_resolution_once_per_refinement(self, sctx, index):
        a = index.atomize(sctx.range_("f", 0, 31))
        a.mask()
        index.atomize(sctx.range_("f", 8, 15))  # splits inside a
        before = index.resolves
        a.mask()  # first read after the split: one rewrite-table pass
        assert index.resolves == before + 1
        a.mask()
        a.mask()
        assert index.resolves == before + 1, "re-resolved a current mask"

    def test_splits_outside_set_do_not_resolve(self, sctx, index):
        a = index.atomize(sctx.range_("f", 0, 15))
        a.mask()
        # Refinement disjoint from ``a``: version moves, but none of a's
        # slots retired, so the slow path must see zero stale bits.
        index.atomize(sctx.range_("f", 32, 47))
        before = index.resolves
        a.mask()
        assert index.resolves == before
