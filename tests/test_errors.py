"""Exception hierarchy: every library error is a ReproError."""

import pytest

from repro.errors import (
    DataPlaneError,
    DatasetError,
    PlannerError,
    ProtocolError,
    RegexSyntaxError,
    ReproError,
    SerializationError,
    SimulationError,
    SpecificationError,
    TopologyError,
)


@pytest.mark.parametrize(
    "exc",
    [
        DataPlaneError,
        DatasetError,
        PlannerError,
        ProtocolError,
        RegexSyntaxError,
        SerializationError,
        SimulationError,
        SpecificationError,
        TopologyError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_regex_error_is_specification_error():
    # The DSL surfaces regex problems as specification problems.
    assert issubclass(RegexSyntaxError, SpecificationError)


def test_catch_all_pattern():
    """Downstream users can wrap any library call in one except clause."""
    from repro.automata import parse_regex

    try:
        parse_regex("((((")
    except ReproError as error:
        assert "(" not in str(type(error))
    else:  # pragma: no cover
        pytest.fail("expected a ReproError")
