"""LEC computation: the minimal (packet space → action) partition."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.dataplane import Action, Rule
from repro.dataplane.lec import compute_lec_table, diff_lec_tables


def small_ctx():
    return PacketSpaceContext(HeaderLayout([("f", 6)]))


class TestLecTable:
    def test_empty_table_is_all_drop(self, ctx):
        table = compute_lec_table(ctx, [])
        entries = table.entries()
        assert len(entries) == 1
        pred, action = entries[0]
        assert pred.is_universe
        assert action.is_drop

    def test_priority_order_respected(self, ctx):
        specific = Rule(
            ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), priority=24
        )
        general = Rule(
            ctx.ip_prefix("10.0.0.0/16"), Action.forward_all(["B"]), priority=16
        )
        table = compute_lec_table(ctx, [general, specific])
        a_pred = table.predicate_for(Action.forward_all(["A"]))
        b_pred = table.predicate_for(Action.forward_all(["B"]))
        assert a_pred == ctx.ip_prefix("10.0.0.0/24")
        assert b_pred == ctx.ip_prefix("10.0.0.0/16") - ctx.ip_prefix("10.0.0.0/24")

    def test_shadowed_rule_invisible(self, ctx):
        top = Rule(ctx.universe, Action.drop(), priority=10)
        hidden = Rule(ctx.ip_prefix("10.0.0.0/8"), Action.forward_all(["A"]), priority=1)
        table = compute_lec_table(ctx, [top, hidden])
        assert table.predicate_for(Action.forward_all(["A"])).is_empty

    def test_same_action_rules_merge_into_one_lec(self, ctx):
        r1 = Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), 24)
        r2 = Rule(ctx.ip_prefix("10.0.1.0/24"), Action.forward_all(["A"]), 24)
        table = compute_lec_table(ctx, [r1, r2])
        merged = table.predicate_for(Action.forward_all(["A"]))
        assert merged == ctx.ip_prefix("10.0.0.0/23")

    def test_partition_properties(self, ctx):
        rules = [
            Rule(ctx.ip_prefix("10.0.0.0/8"), Action.forward_all(["A"]), 8),
            Rule(ctx.ip_prefix("10.1.0.0/16"), Action.forward_any(["B", "C"]), 16),
            Rule(ctx.value("dst_port", 80), Action.drop(), 40),
        ]
        table = compute_lec_table(ctx, rules)
        entries = table.entries()
        union = ctx.union(pred for pred, _action in entries)
        assert union.is_universe
        for i, (a, _) in enumerate(entries):
            for b, _ in entries[i + 1:]:
                assert not a.overlaps(b)

    def test_action_of_splits_query(self, ctx):
        rules = [
            Rule(ctx.ip_prefix("10.0.0.0/24"), Action.forward_all(["A"]), 24),
        ]
        table = compute_lec_table(ctx, rules)
        pieces = table.action_of(ctx.ip_prefix("10.0.0.0/23"))
        actions = {action for _pred, action in pieces}
        assert Action.forward_all(["A"]) in actions
        assert Action.drop() in actions
        total = ctx.union(pred for pred, _action in pieces)
        assert total == ctx.ip_prefix("10.0.0.0/23")


class TestDiff:
    def test_no_change_no_delta(self, ctx):
        rules = [Rule(ctx.ip_prefix("10.0.0.0/8"), Action.forward_all(["A"]), 8)]
        t1 = compute_lec_table(ctx, rules)
        t2 = compute_lec_table(ctx, list(rules))
        assert diff_lec_tables(t1, t2) == []

    def test_delta_captures_changed_region_exactly(self, ctx):
        before = [Rule(ctx.ip_prefix("10.0.0.0/8"), Action.forward_all(["A"]), 8)]
        after = before + [
            Rule(ctx.ip_prefix("10.9.0.0/16"), Action.forward_all(["B"]), 16)
        ]
        t1 = compute_lec_table(ctx, before)
        t2 = compute_lec_table(ctx, after)
        deltas = diff_lec_tables(t1, t2)
        region = ctx.union(d.predicate for d in deltas)
        assert region == ctx.ip_prefix("10.9.0.0/16")
        (delta,) = deltas
        assert delta.old_action == Action.forward_all(["A"])
        assert delta.new_action == Action.forward_all(["B"])

    def test_deltas_disjoint(self, ctx):
        before = [Rule(ctx.ip_prefix("10.0.0.0/8"), Action.forward_all(["A"]), 8)]
        after = [
            Rule(ctx.ip_prefix("10.0.0.0/9"), Action.forward_all(["B"]), 9),
            Rule(ctx.ip_prefix("10.128.0.0/9"), Action.drop(), 9),
        ]
        deltas = diff_lec_tables(
            compute_lec_table(ctx, before), compute_lec_table(ctx, after)
        )
        for i, a in enumerate(deltas):
            for b in deltas[i + 1:]:
                assert not a.predicate.overlaps(b.predicate)


@st.composite
def rule_set(draw):
    """Random prioritized rules over a 6-bit field."""
    n = draw(st.integers(0, 6))
    rules = []
    ctx = small_ctx()
    for _ in range(n):
        lo = draw(st.integers(0, 63))
        hi = draw(st.integers(lo, 63))
        action_kind = draw(st.integers(0, 2))
        if action_kind == 0:
            action = Action.drop()
        elif action_kind == 1:
            action = Action.forward_all([draw(st.sampled_from("ABC"))])
        else:
            action = Action.forward_any(["A", "B"])
        priority = draw(st.integers(0, 10))
        rules.append(Rule(ctx.range_("f", lo, hi), action, priority))
    return ctx, rules


class TestLecProperties:
    @given(rule_set())
    @settings(max_examples=80, deadline=None)
    def test_lec_agrees_with_first_match(self, data):
        """Every concrete packet's LEC action equals first-match semantics."""
        ctx, rules = data
        table = compute_lec_table(ctx, rules)
        ordered = sorted(rules, key=Rule.sort_key)
        rng = random.Random(0)
        for _ in range(12):
            value = rng.randrange(64)
            pkt = ctx.value("f", value)
            expected = Action.drop()
            for rule in ordered:
                if rule.match.covers(pkt):
                    expected = rule.action
                    break
            pieces = table.action_of(pkt)
            assert len(pieces) == 1
            assert pieces[0][1] == expected

    @given(rule_set())
    @settings(max_examples=80, deadline=None)
    def test_lec_partition_covers_and_disjoint(self, data):
        ctx, rules = data
        table = compute_lec_table(ctx, rules)
        entries = table.entries()
        assert ctx.union(p for p, _a in entries).is_universe
        assert sum(p.count() for p, _a in entries) == 64
