"""Planner: verification verdicts, equal local checks, task decomposition,
§3 consistency validation."""

import pytest

from repro.core.counting import CountExp
from repro.core.invariant import (
    Atom,
    Invariant,
    LengthFilter,
    MatchKind,
    PathExpr,
)
from repro.core.library import (
    all_shortest_path_availability,
    reachability,
    waypoint_reachability,
)
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule
from repro.errors import SpecificationError
from repro.topology import fattree, fig2a_example


class TestVerify:
    def test_waypoint_violation_found(self, ctx, fig2a, fig2_planes, fig2_spaces):
        p1 = fig2_spaces[0]
        inv = waypoint_reachability(p1, "S", "W", "D")
        result = Planner(fig2a, ctx).verify(inv, fig2_planes)
        assert not result.holds
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.ingress == "S"
        assert (0,) in violation.counts
        pkt = violation.example_packet()
        assert pkt["dst_port"] == 80  # the P3 sub-space

    def test_reachability_holds(self, ctx, fig2a, fig2_planes, fig2_spaces):
        inv = reachability(fig2_spaces[0], "S", "D")
        result = Planner(fig2a, ctx).verify(inv, fig2_planes)
        assert result.holds
        assert result.violations == []

    def test_result_summary_strings(self, ctx, fig2a, fig2_planes, fig2_spaces):
        inv = reachability(fig2_spaces[0], "S", "D")
        result = Planner(fig2a, ctx).verify(inv, fig2_planes)
        assert "HOLDS" in result.summary()
        assert bool(result)

    def test_disconnected_ingress_counts_zero(self, ctx, fig2a, fig2_planes):
        """An invariant whose regex admits no topological path yields an
        all-zero count and a violation for exist >= 1."""
        space = ctx.ip_prefix("10.0.0.0/23")
        inv = Invariant(
            space,
            ("S",),
            Atom(PathExpr.parse("S D", simple_only=True), MatchKind.EXIST,
                 CountExp(">=", 1)),
            name="impossible",
        )
        result = Planner(fig2a, ctx).verify(inv, fig2_planes)
        assert not result.holds

    def test_empty_packet_space_rejected(self, ctx):
        with pytest.raises(SpecificationError):
            Invariant(
                ctx.empty, ("S",),
                Atom(PathExpr.parse("S"), MatchKind.EXIST, CountExp(">=", 1)),
            )


class TestEqualLocalChecks:
    def _shortest_planes(self, ctx, topo, space, dest):
        """ECMP shortest-path forwarding toward dest for all devices."""
        planes = {name: DevicePlane(name, ctx) for name in topo.devices}
        distances = topo.hop_distances_to(dest)
        for dev in topo.devices:
            if dev == dest:
                planes[dev].install_many([Rule(space, Action.deliver(), 1)])
                continue
            hops = [
                n for n in topo.neighbors(dev)
                if distances.get(n, 99) == distances[dev] - 1
            ]
            planes[dev].install_many(
                [Rule(space, Action.forward_any(hops), 1)]
            )
        return planes

    def test_all_shortest_holds_on_full_ecmp(self, ctx):
        topo = fattree(4)
        src, dst = "edge_0_0", "edge_3_1"
        space = ctx.ip_prefix("10.0.7.0/24")
        planes = self._shortest_planes(ctx, topo, space, dst)
        inv = all_shortest_path_availability(space, src, dst)
        result = Planner(topo, ctx).verify(inv, planes)
        assert result.holds

    def test_missing_ecmp_member_is_local_violation(self, ctx):
        topo = fattree(4)
        src, dst = "edge_0_0", "edge_3_1"
        space = ctx.ip_prefix("10.0.7.0/24")
        planes = self._shortest_planes(ctx, topo, space, dst)
        # Drop one ECMP member at the source edge switch.
        plane = planes[src]
        rule = plane.rules[0]
        group = rule.action.group
        assert len(group) > 1
        plane.replace_rule(
            rule.rule_id, Rule(space, Action.forward_any(group[:1]), 1)
        )
        inv = all_shortest_path_availability(space, src, dst)
        result = Planner(topo, ctx).verify(inv, planes)
        assert not result.holds
        assert any(src == v.ingress for v in result.violations)
        assert all(v.message for v in result.violations)

    def test_equal_with_other_atoms_rejected(self, ctx, fig2a):
        space = ctx.ip_prefix("10.0.0.0/23")
        from repro.core.invariant import And

        eq_atom = Atom(
            PathExpr.parse("S .* D", (LengthFilter("==", "shortest"),), True),
            MatchKind.EQUAL,
        )
        exist_atom = Atom(
            PathExpr.parse("S .* D", simple_only=True), MatchKind.EXIST,
            CountExp(">=", 1),
        )
        inv = Invariant(space, ("S",), And((eq_atom, exist_atom)))
        with pytest.raises(SpecificationError):
            Planner(fig2a, ctx).verify(inv, {})


class TestDecompose:
    def test_tasks_cover_all_nodes(self, ctx, fig2a, fig2_spaces):
        inv = waypoint_reachability(fig2_spaces[0], "S", "W", "D")
        planner = Planner(fig2a, ctx)
        net = planner.build_dpvnet(inv)
        tasks = planner.decompose(inv, net)
        assert tasks.total_nodes() == net.num_nodes
        assert set(tasks.node_home.values()) == net.devices()

    def test_neighbor_refs_point_at_hosting_devices(self, ctx, fig2a, fig2_spaces):
        inv = waypoint_reachability(fig2_spaces[0], "S", "W", "D")
        planner = Planner(fig2a, ctx)
        net = planner.build_dpvnet(inv)
        tasks = planner.decompose(inv, net)
        for task in tasks.tasks.values():
            for node in task.nodes:
                for ref in node.downstream:
                    assert tasks.node_home[ref.node_id] == ref.dev
                for ref in node.upstream:
                    assert tasks.node_home[ref.node_id] == ref.dev

    def test_source_marked(self, ctx, fig2a, fig2_spaces):
        inv = waypoint_reachability(fig2_spaces[0], "S", "W", "D")
        tasks = Planner(fig2a, ctx).decompose(inv)
        s_task = tasks.tasks["S"]
        assert any(n.is_source_for == "S" for n in s_task.nodes)

    def test_reduction_exps_single_atom(self, ctx, fig2a, fig2_spaces):
        inv = waypoint_reachability(fig2_spaces[0], "S", "W", "D")
        tasks = Planner(fig2a, ctx).decompose(inv)
        (exp,) = tasks.tasks["S"].reduction_exps
        assert exp == CountExp(">=", 1)

    def test_reduction_disabled_for_compound(self, ctx, fig2a, fig2_spaces):
        from repro.core.library import multicast

        inv = multicast(fig2_spaces[0], "S", ["B", "D"])
        tasks = Planner(fig2a, ctx).decompose(inv)
        assert all(e is None for e in tasks.tasks["S"].reduction_exps)


class TestValidation:
    def test_consistent_invariant_passes(self, ctx, fig2a):
        inv = reachability(ctx.ip_prefix("10.0.0.0/23"), "S", "D")
        Planner(fig2a, ctx).validate(inv)  # no raise

    def test_wrong_destination_detected(self, ctx, fig2a):
        """Packet space owned by D, but the path expression ends at B."""
        inv = reachability(ctx.ip_prefix("10.0.0.0/23"), "S", "B")
        with pytest.raises(SpecificationError):
            Planner(fig2a, ctx).validate(inv)
