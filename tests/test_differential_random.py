"""Randomized differential testing: Tulkun vs centralized baselines.

Each seeded scenario generates a random connected topology, synthesizes
shortest-path ECMP FIBs (correct by construction), randomly corrupts some of
them, and checks a sample of reachability requirements three ways: Tulkun's
distributed counting, VeriFlow's trie, and AP's atomic predicates.  All
three must agree on every requirement's verdict.

Every assertion message carries the scenario seed so a failure is
reproducible with ``_build_scenario(seed)``.
"""

import random
from typing import Dict, List, Tuple

import pytest

from repro.baselines import ApVerifier, ReachabilityQuery, VeriFlowVerifier
from repro.core.library import reachability
from repro.dataplane import DevicePlane, Rule
from repro.datasets.routing import generate_fibs, inject_errors
from repro.sim import TulkunRunner
from repro.topology import Topology

MAX_EXTRA_HOPS = 2
BASELINES = (VeriFlowVerifier, ApVerifier)


def _random_topology(rng: random.Random) -> Topology:
    """A random connected graph: spanning tree + a few chords."""
    size = rng.randint(5, 8)
    names = [f"r{i}" for i in range(size)]
    topology = Topology(name="rand")
    for i, name in enumerate(names[1:], start=1):
        topology.add_link(name, names[rng.randrange(i)])
    extra = rng.randint(0, size // 2)
    for _ in range(extra):
        a, b = rng.sample(names, 2)
        if not topology.has_link(a, b):
            topology.add_link(a, b)
    return topology


def _build_scenario(seed: int):
    """(topology, ctx, rules, pairs) for one differential scenario."""
    from repro.bdd import HeaderLayout, PacketSpaceContext

    rng = random.Random(seed)
    topology = _random_topology(rng)
    ctx = PacketSpaceContext(HeaderLayout.dst_only())
    # ECMP (ANY) groups keep the per-universe counting semantics aligned
    # with the baselines' every-branch-must-work graph check.
    rules = generate_fibs(topology, ctx, rule_multiplier=1, ecmp=True)
    if rng.random() < 0.6:
        inject_errors(topology, rules, ctx, count=rng.randint(1, 2), seed=seed)
    devices = topology.devices
    num_pairs = min(2, len(devices) - 1)
    pairs: List[Tuple[str, str]] = []
    while len(pairs) < num_pairs:
        src, dst = rng.sample(devices, 2)
        if (src, dst) not in pairs:
            pairs.append((src, dst))
    return topology, ctx, rules, pairs


def _fresh_planes(topology, ctx, rules) -> Dict[str, DevicePlane]:
    planes = {}
    for dev in topology.devices:
        plane = DevicePlane(dev, ctx)
        plane.install_many(
            [Rule(r.match, r.action, r.priority) for r in rules.get(dev, [])]
        )
        planes[dev] = plane
    return planes


def _tulkun_verdicts(topology, ctx, rules, pairs) -> Dict[Tuple[str, str], bool]:
    invariants = []
    for src, dst in pairs:
        prefix = topology.external_prefixes[dst][0]
        invariants.append(
            reachability(
                ctx.ip_prefix(prefix), src, dst,
                max_extra_hops=MAX_EXTRA_HOPS,
            )
        )
    runner = TulkunRunner(topology, ctx, invariants)
    fresh = {
        dev: [Rule(r.match, r.action, r.priority) for r in dev_rules]
        for dev, dev_rules in rules.items()
    }
    result = runner.burst_update(fresh)
    return {
        pair: result.holds[inv.name]
        for pair, inv in zip(pairs, invariants)
    }


def _baseline_verdicts(
    tool_cls, topology, ctx, rules, pairs
) -> Dict[Tuple[str, str], bool]:
    verdicts = {}
    for src, dst in pairs:
        prefix = topology.external_prefixes[dst][0]
        query = ReachabilityQuery(src, dst, prefix, MAX_EXTRA_HOPS)
        tool = tool_cls(topology, ctx, [query])
        report = tool.burst_verify(_fresh_planes(topology, ctx, rules))
        verdicts[(src, dst)] = report.holds
    return verdicts


# ≥50 scenarios, per the differential-coverage requirement.
SEEDS = list(range(100, 152))


@pytest.mark.parametrize("seed", SEEDS)
def test_tulkun_agrees_with_baselines(seed):
    topology, ctx, rules, pairs = _build_scenario(seed)
    tulkun = _tulkun_verdicts(topology, ctx, rules, pairs)
    for tool_cls in BASELINES:
        baseline = _baseline_verdicts(tool_cls, topology, ctx, rules, pairs)
        for pair in pairs:
            assert tulkun[pair] == baseline[pair], (
                f"seed={seed}: Tulkun={tulkun[pair]} but "
                f"{tool_cls.name}={baseline[pair]} for pair {pair}; "
                f"reproduce with _build_scenario({seed})"
            )


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(200, 230))
def test_extended_differential_battery(seed):
    """A second, larger battery (bigger topologies, more pairs) for
    ``pytest -m slow`` runs — same oracle, heavier scenarios."""
    rng = random.Random(seed)
    size = rng.randint(9, 13)
    names = [f"r{i}" for i in range(size)]
    topology = Topology(name="rand-large")
    for i, name in enumerate(names[1:], start=1):
        topology.add_link(name, names[rng.randrange(i)])
    for _ in range(rng.randint(2, size // 2)):
        a, b = rng.sample(names, 2)
        if not topology.has_link(a, b):
            topology.add_link(a, b)

    from repro.bdd import HeaderLayout, PacketSpaceContext

    ctx = PacketSpaceContext(HeaderLayout.dst_only())
    rules = generate_fibs(topology, ctx, rule_multiplier=1, ecmp=True)
    if rng.random() < 0.7:
        inject_errors(topology, rules, ctx, count=rng.randint(1, 3), seed=seed)
    pairs = []
    while len(pairs) < 3:
        src, dst = rng.sample(topology.devices, 2)
        if (src, dst) not in pairs:
            pairs.append((src, dst))

    tulkun = _tulkun_verdicts(topology, ctx, rules, pairs)
    for tool_cls in BASELINES:
        baseline = _baseline_verdicts(tool_cls, topology, ctx, rules, pairs)
        for pair in pairs:
            assert tulkun[pair] == baseline[pair], (
                f"seed={seed}: Tulkun={tulkun[pair]} but "
                f"{tool_cls.name}={baseline[pair]} for pair {pair} "
                f"(extended battery)"
            )


def test_scenarios_cover_both_verdicts():
    """The generator must exercise passing *and* failing scenarios, or the
    differential check is vacuous."""
    verdicts = set()
    for seed in SEEDS:
        topology, ctx, rules, pairs = _build_scenario(seed)
        verdicts.update(_tulkun_verdicts(topology, ctx, rules, pairs).values())
        if verdicts == {True, False}:
            return
    raise AssertionError(
        "differential scenarios never produced both verdicts; "
        "generator is degenerate"
    )
