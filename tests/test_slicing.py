"""Tenant slicing: registry routing, widening, footprint groups, runner wiring.

The slicing subsystem treats each tenant intent (a named group of
invariants) as a first-class slice with a packet-space + device footprint,
and routes every event only to the slices whose footprint it intersects.
These tests pin the routing rules on topologies where the footprints are
known exactly (two disjoint chains), the conservative widening escape hatch
(transform rules disable packet gating, stickily), and the runner-level
bookkeeping: touched-tenant tracking, the status cache recomputing only
dirty invariants, and slice-aligned device groups for the process backend.
"""

import dataclasses

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Action, DevicePlane, Rule
from repro.dataplane.action import Transform
from repro.errors import SimulationError
from repro.sim import TulkunRunner
from repro.slicing import SliceRegistry, tenant_of_invariant
from repro.topology import Topology, fig2a_example
from tests.conftest import build_fig2_planes

pytestmark = pytest.mark.slicing


def named(inv, name):
    return dataclasses.replace(inv, name=name)


# ----------------------------------------------------------------------
# Fixtures: two disjoint chains (exact footprints) and fig2a (realistic)
# ----------------------------------------------------------------------
def chains_topology():
    """X1-X2-X3 and Y1-Y2-Y3: two connected components, so the tenant
    footprints are exactly the chain device sets."""
    topo = Topology("chains")
    for a, b in [("X1", "X2"), ("X2", "X3"), ("Y1", "Y2"), ("Y2", "Y3")]:
        topo.add_link(a, b)
    return topo


def chains_runner(slices="auto", **kwargs):
    ctx = PacketSpaceContext()
    topo = chains_topology()
    space = ctx.ip_prefix("10.0.0.0/24")
    invariants = [
        named(reachability(space, "X1", "X3"), "tx/x-reach"),
        named(reachability(space, "Y1", "Y3"), "ty/y-reach"),
    ]
    return ctx, topo, TulkunRunner(
        topo, ctx, invariants, slices=slices, **kwargs
    )


def chains_rules(ctx):
    space = ctx.ip_prefix("10.0.0.0/24")
    return {
        "X1": [Rule(space, Action.forward_all(["X2"]), 10)],
        "X2": [Rule(space, Action.forward_all(["X3"]), 10)],
        "X3": [Rule(space, Action.deliver(), 10)],
        "Y1": [Rule(space, Action.forward_all(["Y2"]), 10)],
        "Y2": [Rule(space, Action.forward_all(["Y3"]), 10)],
        "Y3": [Rule(space, Action.deliver(), 10)],
    }


def fig2a_runner(slices="auto"):
    ctx = PacketSpaceContext()
    topo = fig2a_example()
    space = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        named(reachability(space, "S", "D"), "alice/s-to-d"),
        named(waypoint_reachability(space, "S", "W", "D"), "alice/via-w"),
        named(reachability(space, "A", "D"), "bob/a-to-d"),
    ]
    return ctx, topo, TulkunRunner(topo, ctx, invariants, slices=slices)


# ----------------------------------------------------------------------
# Tenant naming + membership
# ----------------------------------------------------------------------
class TestMembership:
    def test_tenant_prefix_convention(self):
        assert tenant_of_invariant("alice/s-to-d") == "alice"
        assert tenant_of_invariant("alice/a/b") == "alice"
        # Unprefixed invariants are their own single-intent slice.
        assert tenant_of_invariant("reach_S_D") == "reach_S_D"

    def test_auto_mode_groups_by_prefix(self):
        _ctx, _topo, runner = fig2a_runner()
        registry = runner.slice_registry
        assert registry.tenants() == ["alice", "bob"]
        assert registry.slices["alice"].invariants == {
            "alice/s-to-d", "alice/via-w",
        }
        assert registry.tenant_of("bob/a-to-d") == "bob"

    def test_mapping_mode_with_prefix_fallback(self):
        ctx = PacketSpaceContext()
        topo = fig2a_example()
        space = ctx.ip_prefix("10.0.0.0/23")
        invariants = [
            named(reachability(space, "S", "D"), "alice/s-to-d"),
            named(reachability(space, "A", "D"), "bob/a-to-d"),
        ]
        runner = TulkunRunner(
            topo, ctx, invariants, slices={"team": ["alice/s-to-d"]}
        )
        registry = runner.slice_registry
        assert registry.tenant_of("alice/s-to-d") == "team"
        # Unlisted invariants fall back to the prefix convention.
        assert registry.tenant_of("bob/a-to-d") == "bob"

    def test_duplicate_add_rejected(self):
        _ctx, _topo, runner = fig2a_runner()
        registry = runner.slice_registry
        inv = runner.invariants[0]
        with pytest.raises(SimulationError):
            registry.add_invariant(inv, runner.task_sets[0])

    def test_remove_dissolves_empty_slice(self):
        _ctx, _topo, runner = fig2a_runner()
        registry = runner.slice_registry
        assert registry.remove_invariant("bob/a-to-d") == "bob"
        assert "bob" not in registry.slices
        assert registry.touched_by_rewrite("A") <= {"alice"}
        # Removing one of two alice invariants keeps the slice alive.
        assert registry.remove_invariant("alice/via-w") == "alice"
        assert "alice" in registry.slices
        assert registry.remove_invariant("nope") is None

    def test_slices_off_by_default(self):
        ctx = PacketSpaceContext()
        topo = fig2a_example()
        space = ctx.ip_prefix("10.0.0.0/23")
        runner = TulkunRunner(
            topo, ctx, [reachability(space, "S", "D")]
        )
        assert runner.slice_registry is None

    def test_unknown_slices_mode_rejected(self):
        ctx = PacketSpaceContext()
        topo = fig2a_example()
        space = ctx.ip_prefix("10.0.0.0/23")
        with pytest.raises(ValueError):
            TulkunRunner(
                topo, ctx, [reachability(space, "S", "D")], slices="magic"
            )


# ----------------------------------------------------------------------
# Event routing (exact on the disjoint chains)
# ----------------------------------------------------------------------
class TestRouting:
    def test_update_routes_by_device(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        match = ctx.ip_prefix("10.0.0.0/24")
        assert registry.touched_by_update("X2", match) == {"tx"}
        assert registry.touched_by_update("Y2", match) == {"ty"}

    def test_update_packet_gating(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        disjoint = ctx.ip_prefix("192.168.0.0/16")
        assert registry.touched_by_update("X2", disjoint) == set()
        overlapping = ctx.ip_prefix("10.0.0.128/25")
        assert registry.touched_by_update("X2", overlapping) == {"tx"}

    def test_unresolvable_match_falls_back_to_device_gating(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        assert registry.touched_by_update("X2", None) == {"tx"}
        assert registry.touched_by_update("Y1", None) == {"ty"}

    def test_link_routes_to_either_endpoint(self):
        _ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        assert registry.touched_by_link("X1", "X2") == {"tx"}
        assert registry.touched_by_link("Y2", "Y3") == {"ty"}

    def test_lifecycle_includes_neighbors(self):
        _ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        assert registry.touched_by_lifecycle("X2") == {"tx"}
        assert registry.touched_by_lifecycle("Y3") == {"ty"}

    def test_rewrite_skips_packet_gating(self):
        _ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        assert registry.touched_by_rewrite("X1") == {"tx"}
        assert registry.touched_by_rewrite("Y1") == {"ty"}

    def test_overlap_memo_hits_are_stable(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        match = ctx.ip_prefix("10.0.0.0/25")
        first = registry.touched_by_update("X2", match)
        assert registry.touched_by_update("X2", match) == first
        assert (match, "tx") in registry._overlap_memo


# ----------------------------------------------------------------------
# Conservative widening
# ----------------------------------------------------------------------
class TestWidening:
    def test_transform_rule_widens(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        rewrite = Transform.set_fields(dst_port=80)
        registry.note_rules(
            [Rule(ctx.ip_prefix("10.0.0.0/24"),
                  Action.forward_all(["X2"], transform=rewrite), 10)]
        )
        assert registry.widened

    def test_widened_disables_packet_gating_but_not_device_gating(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        registry.widen()
        disjoint = ctx.ip_prefix("192.168.0.0/16")
        # Packet gating off: the disjoint match now touches the slice...
        assert registry.touched_by_update("X2", disjoint) == {"tx"}
        # ...but device gating still confines it to slices on the device.
        assert registry.touched_by_update("Y2", disjoint) == {"ty"}

    def test_widen_is_sticky(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        registry.widen()
        registry.note_rules(
            [Rule(ctx.ip_prefix("10.0.0.0/24"), Action.deliver(), 10)]
        )
        assert registry.widened

    def test_plain_rules_do_not_widen(self):
        ctx, _topo, runner = chains_runner()
        registry = runner.slice_registry
        registry.note_rules(chains_rules(ctx)["X1"])
        assert not registry.widened


# ----------------------------------------------------------------------
# Device groups (process-backend scheduling unit)
# ----------------------------------------------------------------------
class TestDeviceGroups:
    def test_disjoint_footprints_make_separate_groups(self):
        _ctx, _topo, runner = chains_runner()
        groups = runner.slice_registry.device_groups()
        assert groups == [["X1", "X2", "X3"], ["Y1", "Y2", "Y3"]]

    def test_overlapping_footprints_merge(self):
        _ctx, _topo, runner = fig2a_runner()
        groups = runner.slice_registry.device_groups()
        # alice and bob share A/B/W/D, so everything is one group.
        assert len(groups) == 1
        assert set(groups[0]) >= {"A", "B", "D", "W"}

    def test_runner_exposes_groups_only_when_sliced(self):
        _ctx, _topo, runner = chains_runner()
        assert runner._slice_groups() == [
            ["X1", "X2", "X3"], ["Y1", "Y2", "Y3"],
        ]
        ctx = PacketSpaceContext()
        topo = chains_topology()
        space = ctx.ip_prefix("10.0.0.0/24")
        unsliced = TulkunRunner(
            topo, ctx, [named(reachability(space, "X1", "X3"), "tx/x")]
        )
        assert unsliced._slice_groups() is None


# ----------------------------------------------------------------------
# Runner wiring: touched tenants, status cache, verdict parity
# ----------------------------------------------------------------------
class TestRunnerWiring:
    def test_update_touches_only_intersecting_slice(self):
        ctx, _topo, runner = chains_runner()
        with runner:
            runner.burst_update(chains_rules(ctx))
            assert runner.consume_touched() == {"tx", "ty"}  # deploy
            space = ctx.ip_prefix("10.0.0.0/25")
            runner.apply_updates(
                [("X2", Rule(space, Action.forward_all(["X3"]), 99), None)]
            )
            assert runner.touched_tenants == {"tx"}
            # Only the touched slice's invariants are dirty in the cache.
            assert runner._status_dirty == {"tx/x-reach"}
            statuses = runner.statuses()
            assert statuses == {"tx/x-reach": "HOLDS", "ty/y-reach": "HOLDS"}
            assert runner._status_dirty == set()

    def test_consume_touched_drains(self):
        ctx, _topo, runner = chains_runner()
        with runner:
            runner.burst_update(chains_rules(ctx))
            assert runner.consume_touched() >= {"tx", "ty"}
            assert runner.consume_touched() == set()

    def test_link_and_lifecycle_touch_their_chain(self):
        ctx, _topo, runner = chains_runner()
        with runner:
            runner.burst_update(chains_rules(ctx))
            runner.consume_touched()
            runner.fail_links([("Y2", "Y3")])
            assert runner.consume_touched() == {"ty"}
            runner.recover_links([("Y2", "Y3")])
            assert runner.consume_touched() == {"ty"}
            runner.crash_device("X3")
            assert runner.consume_touched() == {"tx"}
            runner.restart_device("X3")
            assert runner.consume_touched() == {"tx"}

    def test_sliced_statuses_match_unsliced(self):
        ctx, _topo, runner = chains_runner()
        ctx2 = PacketSpaceContext()
        topo2 = chains_topology()
        space2 = ctx2.ip_prefix("10.0.0.0/24")
        plain = TulkunRunner(
            topo2,
            ctx2,
            [
                named(reachability(space2, "X1", "X3"), "tx/x-reach"),
                named(reachability(space2, "Y1", "Y3"), "ty/y-reach"),
            ],
        )
        with runner, plain:
            runner.burst_update(chains_rules(ctx))
            plain.burst_update(chains_rules(ctx2))
            # Break the Y chain on the sliced and unsliced legs alike.
            for target in (runner, plain):
                c = target.ctx
                target.apply_updates(
                    [("Y2", Rule(c.ip_prefix("10.0.0.0/24"),
                                 Action.drop(), 99), None)]
                )
            assert runner.statuses() == plain.statuses()
            assert runner.statuses()["ty/y-reach"] == "VIOLATED"

    def test_invariant_add_remove_updates_registry(self):
        ctx, _topo, runner = chains_runner()
        with runner:
            runner.burst_update(chains_rules(ctx))
            runner.consume_touched()
            space = ctx.ip_prefix("10.0.0.0/24")
            extra = named(reachability(space, "X2", "X3"), "tx/x-tail")
            runner.add_invariants([extra])
            registry = runner.slice_registry
            assert registry.tenant_of("tx/x-tail") == "tx"
            assert runner.consume_touched() == {"tx"}
            assert runner.statuses()["tx/x-tail"] == "HOLDS"
            runner.remove_invariants(["tx/x-tail"])
            assert registry.tenant_of("tx/x-tail") is None
            assert "tx/x-tail" not in runner.statuses()
            assert runner.consume_touched() == {"tx"}

    def test_explicit_tenant_mapping_on_add(self):
        ctx, _topo, runner = chains_runner()
        with runner:
            runner.burst_update(chains_rules(ctx))
            runner.consume_touched()
            space = ctx.ip_prefix("10.0.0.0/24")
            extra = named(reachability(space, "X3", "X1"), "back")
            runner.add_invariants([extra], tenants={"back": "tx"})
            assert runner.slice_registry.tenant_of("back") == "tx"
