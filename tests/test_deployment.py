"""Deployment variants: wire-serialized messages and the §7 incremental
deployment (off-device proxy verifiers)."""

import pytest

from repro.core.library import reachability
from repro.core.planner import Planner
from repro.dataplane import Rule
from repro.sim import SimNetwork, TulkunRunner
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes


def _rules(planes):
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }


def _deploy(ctx, topo, inv, rules, **network_kwargs):
    planner = Planner(topo, ctx)
    task_sets = [planner.decompose(inv)]
    network = SimNetwork(topo, ctx, {}, task_sets, **network_kwargs)
    for dev, dev_rules in rules.items():
        network.install_rules(dev, dev_rules, at=0.0)
    network.run()
    return network


class TestSerializedMessages:
    def test_same_verdict_with_codec(self, ctx, fig2a, fig2_spaces):
        inv = reachability(fig2_spaces[0], "S", "D")
        planes = build_fig2_planes(ctx)
        plain = _deploy(ctx, fig2a, inv, _rules(planes))
        planes2 = build_fig2_planes(ctx)
        coded = _deploy(
            ctx, fig2a, inv, _rules(planes2), serialize_messages=True
        )
        assert plain.all_hold(inv.name) == coded.all_hold(inv.name) is True
        # Message counts vary run-to-run (event order follows measured wall
        # times); both runs must exchange a comparable number of bytes.
        assert coded.metrics.total_messages() > 0
        assert coded.metrics.total_bytes() > 0

    def test_codec_through_incremental(self, ctx, fig2a, fig2_spaces):
        inv = reachability(fig2_spaces[0], "S", "D")
        planes = build_fig2_planes(ctx)
        network = _deploy(
            ctx, fig2a, inv, _rules(planes), serialize_messages=True
        )
        w_plane = network.devices["W"].plane
        victim = w_plane.rules[0]
        from repro.dataplane import Action

        network.apply_rule_update(
            "W", at=network.last_activity,
            install=Rule(victim.match, Action.drop(), victim.priority),
            remove_rule_id=victim.rule_id,
        )
        network.run()
        # With W black-holing, P2 traffic still reaches D via... B drops P2,
        # so reachability for part of the space fails.
        assert not network.all_hold(inv.name)


class TestProxyDeployment:
    def test_proxy_same_verdict(self, ctx, fig2a, fig2_spaces):
        """All verifiers hosted on W (an RCDC-style off-device cluster):
        verdicts are unchanged, latency cost differs."""
        inv = reachability(fig2_spaces[0], "S", "D")
        planes = build_fig2_planes(ctx)
        proxies = {dev: "W" for dev in fig2a.devices}
        network = _deploy(ctx, fig2a, inv, _rules(planes), proxies=proxies)
        assert network.all_hold(inv.name)

    def test_partial_proxy(self, ctx, fig2a, fig2_spaces):
        """Only B lacks an on-device verifier; its agent runs on A."""
        inv = reachability(fig2_spaces[0], "S", "D")
        planes = build_fig2_planes(ctx)
        network = _deploy(
            ctx, fig2a, inv, _rules(planes), proxies={"B": "A"}
        )
        assert network.all_hold(inv.name)

    def test_proxy_latency_visible(self, ctx, fig2a, fig2_spaces):
        """Hosting every verifier on one far node must not be faster than
        the fully distributed deployment."""
        inv = reachability(fig2_spaces[0], "S", "D")
        on_device = _deploy(
            ctx, fig2a, inv, _rules(build_fig2_planes(ctx))
        )
        proxied = _deploy(
            ctx, fig2a, inv, _rules(build_fig2_planes(ctx)),
            proxies={dev: "S" for dev in fig2a.devices},
        )
        assert proxied.all_hold(inv.name) == on_device.all_hold(inv.name)
