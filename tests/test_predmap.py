"""PredMap: the disjoint predicate→value partition behind all CIBs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.core.predmap import PredMap


def small_ctx():
    return PacketSpaceContext(HeaderLayout([("f", 5)]))


@pytest.fixture
def sctx():
    return small_ctx()


class TestAssignLookup:
    def test_empty_map(self, sctx):
        pm = PredMap(sctx)
        assert pm.lookup(sctx.universe) == []
        assert pm.domain().is_empty
        assert len(pm) == 0

    def test_assign_and_lookup(self, sctx):
        pm = PredMap(sctx)
        low = sctx.range_("f", 0, 15)
        pm.assign([(low, "a")])
        pieces = pm.lookup(sctx.universe)
        assert len(pieces) == 1
        assert pieces[0] == (low, "a")

    def test_lookup_with_default_fills_gap(self, sctx):
        pm = PredMap(sctx)
        low = sctx.range_("f", 0, 15)
        pm.assign([(low, "a")])
        pieces = pm.lookup_with_default(sctx.universe, "zero")
        values = {v for _p, v in pieces}
        assert values == {"a", "zero"}
        total = sctx.union(p for p, _v in pieces)
        assert total.is_universe

    def test_overwrite_carves_existing(self, sctx):
        pm = PredMap(sctx)
        pm.assign([(sctx.universe, "old")])
        mid = sctx.range_("f", 8, 23)
        pm.assign([(mid, "new")])
        assert pm.value_at(sctx.range_("f", 8, 23)) == "new"
        assert pm.value_at(sctx.range_("f", 0, 7)) == "old"
        assert pm.value_at(sctx.range_("f", 24, 31)) == "old"

    def test_equal_values_merge(self, sctx):
        pm = PredMap(sctx)
        pm.assign([(sctx.range_("f", 0, 7), "x")])
        pm.assign([(sctx.range_("f", 8, 15), "x")])
        assert len(pm) == 1
        assert pm.value_at(sctx.range_("f", 0, 15)) == "x"

    def test_assign_empty_piece_ignored(self, sctx):
        pm = PredMap(sctx)
        pm.assign([(sctx.empty, "x")])
        assert len(pm) == 0

    def test_remove(self, sctx):
        pm = PredMap(sctx)
        pm.assign([(sctx.universe, "x")])
        pm.remove(sctx.range_("f", 0, 15))
        assert pm.domain() == sctx.range_("f", 16, 31)

    def test_value_at_none_for_straddling_region(self, sctx):
        pm = PredMap(sctx)
        pm.assign([(sctx.range_("f", 0, 15), "a"), (sctx.range_("f", 16, 31), "b")])
        assert pm.value_at(sctx.range_("f", 8, 23)) is None

    def test_unhashable_values_supported(self, sctx):
        pm = PredMap(sctx)
        pm.assign([(sctx.universe, ["list", "value"])])
        assert pm.value_at(sctx.universe) == ["list", "value"]


class TestChangedRegion:
    def test_identical_maps(self, sctx):
        a, b = PredMap(sctx), PredMap(sctx)
        a.assign([(sctx.universe, 1)])
        b.assign([(sctx.universe, 1)])
        assert a.changed_region(b).is_empty

    def test_value_difference(self, sctx):
        a, b = PredMap(sctx), PredMap(sctx)
        a.assign([(sctx.universe, 1)])
        b.assign([(sctx.range_("f", 0, 15), 1), (sctx.range_("f", 16, 31), 2)])
        assert a.changed_region(b) == sctx.range_("f", 16, 31)

    def test_domain_difference(self, sctx):
        a, b = PredMap(sctx), PredMap(sctx)
        a.assign([(sctx.range_("f", 0, 15), 1)])
        assert a.changed_region(b) == sctx.range_("f", 0, 15)


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 8))):
        lo = draw(st.integers(0, 31))
        hi = draw(st.integers(lo, 31))
        value = draw(st.integers(0, 3))
        ops.append((lo, hi, value))
    return ops


@st.composite
def mixed_operations(draw):
    """Random assign/remove sequences over [0, 31] ranges."""
    ops = []
    for _ in range(draw(st.integers(1, 10))):
        lo = draw(st.integers(0, 31))
        hi = draw(st.integers(lo, 31))
        if draw(st.booleans()):
            ops.append(("assign", lo, hi, draw(st.integers(0, 3))))
        else:
            ops.append(("remove", lo, hi, None))
    return ops


class TestProperties:
    @given(operations())
    @settings(max_examples=80, deadline=None)
    def test_disjointness_invariant(self, ops):
        ctx = small_ctx()
        pm = PredMap(ctx)
        for lo, hi, value in ops:
            pm.assign([(ctx.range_("f", lo, hi), value)])
        entries = pm.entries()
        for i, (a, _va) in enumerate(entries):
            for b, _vb in entries[i + 1:]:
                assert not a.overlaps(b)

    @given(operations())
    @settings(max_examples=80, deadline=None)
    def test_last_writer_wins(self, ops):
        """Every point's value equals the last assign covering it."""
        ctx = small_ctx()
        pm = PredMap(ctx)
        for lo, hi, value in ops:
            pm.assign([(ctx.range_("f", lo, hi), value)])
        for point in range(32):
            expected = None
            for lo, hi, value in ops:
                if lo <= point <= hi:
                    expected = value
            got = pm.value_at(ctx.value("f", point))
            assert got == expected

    @given(mixed_operations())
    @settings(max_examples=80, deadline=None)
    def test_domain_cache_tracks_writes(self, ops):
        """The cached domain always equals the from-scratch union."""
        ctx = small_ctx()
        pm = PredMap(ctx)
        for op, lo, hi, value in ops:
            region = ctx.range_("f", lo, hi)
            if op == "assign":
                pm.assign([(region, value)])
            else:
                pm.remove(region)
            assert pm.domain() == ctx.union(
                pred for pred, _v in pm.entries()
            )


class TestAtomBackedAgreement:
    """An atom-backed PredMap must agree with a BDD-backed one under any
    assign/remove/lookup sequence — same disjointness and coverage, same
    point values, same (merge-minimal) entry structure."""

    @staticmethod
    def run_pair(ops):
        ctx = small_ctx()
        index = ctx.atom_index()
        bdd_pm, atom_pm = PredMap(ctx), PredMap(index)
        for op, lo, hi, value in ops:
            region = ctx.range_("f", lo, hi)
            if op == "assign":
                bdd_pm.assign([(region, value)])
                atom_pm.assign([(index.atomize(region), value)])
            else:
                bdd_pm.remove(region)
                atom_pm.remove(index.atomize(region))
        return ctx, index, bdd_pm, atom_pm

    @given(mixed_operations())
    @settings(max_examples=60, deadline=None)
    def test_same_partition(self, ops):
        ctx, _index, bdd_pm, atom_pm = self.run_pair(ops)
        assert atom_pm.domain().to_predicate() == bdd_pm.domain()
        bdd_entries = {pred.node: v for pred, v in bdd_pm.entries()}
        atom_entries = {
            aset.to_predicate().node: v for aset, v in atom_pm.entries()
        }
        # Identical region→value partitions, canonical-BDD keyed.
        assert atom_entries == bdd_entries

    @given(mixed_operations())
    @settings(max_examples=60, deadline=None)
    def test_disjoint_covering_and_merge_minimal(self, ops):
        _ctx, _index, _bdd_pm, atom_pm = self.run_pair(ops)
        entries = atom_pm.entries()
        # Disjointness.
        for i, (a, _va) in enumerate(entries):
            for b, _vb in entries[i + 1:]:
                assert not a.overlaps(b)
        # Merge-minimality: one entry per (hashable) value.
        values = [v for _a, v in entries]
        assert len(values) == len(set(values))

    @given(mixed_operations())
    @settings(max_examples=60, deadline=None)
    def test_lookup_agreement(self, ops):
        ctx, index, bdd_pm, atom_pm = self.run_pair(ops)
        probe = ctx.range_("f", 4, 27)
        bdd_pieces = {
            pred.node: v
            for pred, v in bdd_pm.lookup_with_default(probe, "gap")
        }
        atom_pieces = {
            aset.to_predicate().node: v
            for aset, v in atom_pm.lookup_with_default(
                index.atomize(probe), "gap"
            )
        }
        assert atom_pieces == bdd_pieces


class TestDomainCacheInvalidation:
    """The cached domain() must track every write path — assign, remove,
    clear — or announce-side diffs would run against a stale footprint."""

    def test_remove_invalidates_cached_domain(self, sctx):
        pm = PredMap(sctx)
        low = sctx.range_("f", 0, 15)
        high = sctx.range_("f", 16, 31)
        pm.assign([(low, "a"), (high, "b")])
        assert pm.domain() == low | high  # prime the cache
        pm.remove(low)
        assert pm.domain() == high
        pm.remove(sctx.universe)
        assert pm.domain().is_empty

    def test_empty_remove_keeps_cache_valid(self, sctx):
        pm = PredMap(sctx)
        low = sctx.range_("f", 0, 15)
        pm.assign([(low, "a")])
        primed = pm.domain()
        pm.remove(sctx.empty)  # no-op removal must not corrupt anything
        assert pm.domain() == primed == low

    def test_assign_after_remove(self, sctx):
        pm = PredMap(sctx)
        low = sctx.range_("f", 0, 15)
        high = sctx.range_("f", 16, 31)
        pm.assign([(low, "a")])
        pm.domain()
        pm.remove(low)
        pm.assign([(high, "b")])
        assert pm.domain() == high

    def test_clear_invalidates_cached_domain(self, sctx):
        pm = PredMap(sctx)
        pm.assign([(sctx.range_("f", 0, 7), "a")])
        pm.domain()
        pm.clear()
        assert pm.domain().is_empty


class TestMaskTwins:
    """lookup_masks/assign_masks must mirror the generic entry walk bit
    for bit — the fused verifier path rides on this equivalence."""

    def atom_map(self):
        from repro.bdd import HeaderLayout, PacketSpaceContext

        ctx = PacketSpaceContext(HeaderLayout([("f", 6)]))
        index = ctx.atom_index()
        pm = PredMap(index)
        a = index.atomize(ctx.range_("f", 0, 15))
        b = index.atomize(ctx.range_("f", 16, 40))
        pm.assign([(a, "x"), (b, "y")])
        return ctx, index, pm

    def test_lookup_masks_matches_generic(self):
        ctx, index, pm = self.atom_map()
        region = index.atomize(ctx.range_("f", 8, 20))
        generic = pm.lookup(region)
        masks = pm.lookup_masks(region.mask())
        assert [(piece.mask(), v) for piece, v in generic] == masks

    def test_lookup_masks_with_default_matches_generic(self):
        ctx, index, pm = self.atom_map()
        region = index.atomize(ctx.range_("f", 8, 60))
        generic = pm.lookup_with_default(region, "zero")
        masks = pm.lookup_masks_with_default(region.mask(), "zero")
        assert [(piece.mask(), v) for piece, v in generic] == masks

    def test_assign_masks_matches_generic_assign(self):
        ctx, index, pm = self.atom_map()
        region = index.atomize(ctx.range_("f", 8, 20))
        twin = PredMap(index)
        twin.assign(pm.entries())
        pm.assign([(region, "z")])
        twin.assign_masks([(region.mask(), "z")])
        assert [(p.mask(), v) for p, v in pm.entries()] == [
            (p.mask(), v) for p, v in twin.entries()
        ]
        assert pm.domain() == twin.domain()
