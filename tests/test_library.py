"""Table 1: every invariant constructor verified on correct and erroneous
data planes (the §9.1 functionality demonstrations)."""

import pytest

from repro.core.library import (
    anycast,
    blackhole_freeness,
    bounded_length_reachability,
    different_ingress_reachability,
    isolation,
    loop_freeness,
    multicast,
    non_redundant_reachability,
    reachability,
    subset_behavior,
    waypoint_reachability,
)
from repro.core.invariant import PathExpr
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule
from repro.topology import Topology, fig2a_example


@pytest.fixture
def space(ctx):
    return ctx.ip_prefix("10.0.0.0/23")


def make_planes(ctx, actions):
    """Planes from a {device: action} map over one packet space."""
    space = ctx.ip_prefix("10.0.0.0/23")
    planes = {}
    for dev, action in actions.items():
        plane = DevicePlane(dev, ctx)
        if action is not None:
            plane.install_many([Rule(space, action, 10)])
        planes[dev] = plane
    return planes


@pytest.fixture
def good_planes(ctx):
    """Fig. 2a topology, everything forwarded S→A→W→D and delivered."""
    return make_planes(
        ctx,
        {
            "S": Action.forward_all(["A"]),
            "A": Action.forward_all(["W"]),
            "B": Action.drop(),
            "W": Action.forward_all(["D"]),
            "D": Action.deliver(),
        },
    )


class TestReachability:
    def test_holds(self, ctx, fig2a, space, good_planes):
        assert Planner(fig2a, ctx).verify(reachability(space, "S", "D"), good_planes)

    def test_blackhole_violates(self, ctx, fig2a, space, good_planes):
        good_planes["W"].clear()
        result = Planner(fig2a, ctx).verify(reachability(space, "S", "D"), good_planes)
        assert not result.holds

    def test_bounded_variant(self, ctx, fig2a, space, good_planes):
        assert Planner(fig2a, ctx).verify(
            bounded_length_reachability(space, "S", "D", max_hops=3), good_planes
        )
        result = Planner(fig2a, ctx).verify(
            bounded_length_reachability(space, "S", "D", max_hops=2), good_planes
        )
        assert not result.holds  # S→A→W→D is 3 hops

    def test_max_extra_hops_filter(self, ctx, fig2a, space, good_planes):
        inv = reachability(space, "S", "D", max_extra_hops=0)
        # Shortest S→D is 3 hops (S,A,W,D or S,A,B,D): the path used is
        # exactly shortest → holds.
        assert Planner(fig2a, ctx).verify(inv, good_planes)


class TestIsolation:
    def test_holds_when_unreachable(self, ctx, fig2a, space, good_planes):
        inv = isolation(space, "S", "B")
        assert Planner(fig2a, ctx).verify(inv, good_planes)

    def test_violated_when_reachable(self, ctx, fig2a, space, good_planes):
        result = Planner(fig2a, ctx).verify(isolation(space, "S", "D"), good_planes)
        assert not result.holds


class TestLoopAndBlackholeFreeness:
    def test_loop_freeness_holds(self, ctx, fig2a, space, good_planes):
        inv = loop_freeness(space, "S", max_hops=4)
        assert Planner(fig2a, ctx).verify(inv, good_planes)

    def test_loop_detected(self, ctx, fig2a, space):
        planes = make_planes(
            ctx,
            {
                "S": Action.forward_all(["A"]),
                "A": Action.forward_all(["B"]),
                "B": Action.forward_all(["W"]),
                "W": Action.forward_all(["A"]),  # A→B→W→A loop
                "D": Action.deliver(),
            },
        )
        result = Planner(fig2a, ctx).verify(
            loop_freeness(space, "S", max_hops=4), planes
        )
        assert not result.holds

    def test_blackhole_freeness_holds(self, ctx, fig2a, space, good_planes):
        inv = blackhole_freeness(space, "S", max_hops=4)
        assert Planner(fig2a, ctx).verify(inv, good_planes)

    def test_blackhole_found(self, ctx, fig2a, space, good_planes):
        good_planes["W"].clear()  # W now drops everything
        result = Planner(fig2a, ctx).verify(
            blackhole_freeness(space, "S", max_hops=4), good_planes
        )
        assert not result.holds


class TestWaypoint:
    def test_holds(self, ctx, fig2a, space, good_planes):
        inv = waypoint_reachability(space, "S", "W", "D")
        assert Planner(fig2a, ctx).verify(inv, good_planes)

    def test_bypass_violates(self, ctx, fig2a, space):
        planes = make_planes(
            ctx,
            {
                "S": Action.forward_all(["A"]),
                "A": Action.forward_all(["B"]),
                "B": Action.forward_all(["D"]),
                "W": Action.drop(),
                "D": Action.deliver(),
            },
        )
        result = Planner(fig2a, ctx).verify(
            waypoint_reachability(space, "S", "W", "D"), planes
        )
        assert not result.holds


class TestDifferentIngress:
    def test_holds_for_both(self, ctx, fig2a, space, good_planes):
        good_planes["B"].clear()
        good_planes["B"].install_many(
            [Rule(space, Action.forward_all(["D"]), 10)]
        )
        inv = different_ingress_reachability(space, ["S", "B"], "D")
        assert Planner(fig2a, ctx).verify(inv, good_planes)

    def test_one_ingress_failing_violates(self, ctx, fig2a, space, good_planes):
        # B drops: ingress B cannot reach D.
        inv = different_ingress_reachability(space, ["S", "B"], "D")
        result = Planner(fig2a, ctx).verify(inv, good_planes)
        assert not result.holds
        assert any(v.ingress == "B" for v in result.violations)


class TestNonRedundant:
    def test_exactly_one_holds(self, ctx, fig2a, space, good_planes):
        inv = non_redundant_reachability(space, "S", "D")
        assert Planner(fig2a, ctx).verify(inv, good_planes)

    def test_redundant_delivery_violates(self, ctx, fig2a, space):
        planes = make_planes(
            ctx,
            {
                "S": Action.forward_all(["A"]),
                "A": Action.forward_all(["B", "W"]),  # both deliver to D
                "B": Action.forward_all(["D"]),
                "W": Action.forward_all(["D"]),
                "D": Action.deliver(),
            },
        )
        inv = non_redundant_reachability(space, "S", "D")
        result = Planner(fig2a, ctx).verify(inv, planes)
        assert not result.holds
        assert (2,) in result.violations[0].counts


class TestMulticastAnycast:
    def _mc_topo(self):
        topo = Topology("mc")
        topo.add_link("S", "A")
        topo.add_link("A", "D")
        topo.add_link("A", "E")
        return topo

    def test_multicast_holds(self, ctx):
        topo = self._mc_topo()
        space = ctx.ip_prefix("10.0.0.0/23")
        planes = make_planes(
            ctx,
            {
                "S": Action.forward_all(["A"]),
                "A": Action.forward_all(["D", "E"]),
                "D": Action.deliver(),
                "E": Action.deliver(),
            },
        )
        assert Planner(topo, ctx).verify(multicast(space, "S", ["D", "E"]), planes)

    def test_multicast_partial_violates(self, ctx):
        topo = self._mc_topo()
        space = ctx.ip_prefix("10.0.0.0/23")
        planes = make_planes(
            ctx,
            {
                "S": Action.forward_all(["A"]),
                "A": Action.forward_all(["D"]),  # E never reached
                "D": Action.deliver(),
                "E": Action.deliver(),
            },
        )
        result = Planner(topo, ctx).verify(
            multicast(space, "S", ["D", "E"]), planes
        )
        assert not result.holds

    def test_anycast_holds_with_any_group(self, ctx):
        topo = self._mc_topo()
        space = ctx.ip_prefix("10.0.0.0/23")
        planes = make_planes(
            ctx,
            {
                "S": Action.forward_all(["A"]),
                "A": Action.forward_any(["D", "E"]),
                "D": Action.deliver(),
                "E": Action.deliver(),
            },
        )
        assert Planner(topo, ctx).verify(anycast(space, "S", ["D", "E"]), planes)

    def test_anycast_violated_by_all_group(self, ctx):
        """ALL-type split delivers to both → anycast violated."""
        topo = self._mc_topo()
        space = ctx.ip_prefix("10.0.0.0/23")
        planes = make_planes(
            ctx,
            {
                "S": Action.forward_all(["A"]),
                "A": Action.forward_all(["D", "E"]),
                "D": Action.deliver(),
                "E": Action.deliver(),
            },
        )
        result = Planner(topo, ctx).verify(anycast(space, "S", ["D", "E"]), planes)
        assert not result.holds

    def test_anycast_needs_two_destinations(self, ctx):
        with pytest.raises(ValueError):
            anycast(ctx.universe, "S", ["D"])


class TestSubsetBehavior:
    def test_holds(self, ctx, fig2a, space, good_planes):
        path = PathExpr.parse("S .* W .* D", simple_only=True)
        inv = subset_behavior(space, "S", path, max_hops=4)
        assert Planner(fig2a, ctx).verify(inv, good_planes)

    def test_off_pattern_drop_violates(self, ctx, fig2a, space, good_planes):
        """A forwards to B (which drops): the universe has an off-pattern
        trace end → subset behavior broken."""
        plane = good_planes["A"]
        rule = plane.rules[0]
        plane.replace_rule(
            rule.rule_id, Rule(space, Action.forward_all(["B", "W"]), 10)
        )
        path = PathExpr.parse("S .* W .* D", simple_only=True)
        result = Planner(fig2a, ctx).verify(
            subset_behavior(space, "S", path, max_hops=4), good_planes
        )
        assert not result.holds
