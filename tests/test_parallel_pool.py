"""Persistent worker pool: reuse, crash detection, rings, IPC telemetry.

The process backend's pool outlives any single deployment.  These tests pin
the lifecycle contract (fork once → reset thereafter, byte-identical
outcomes either way), the crash story (a dead worker breaks the pool, the
runner respawns a fresh one), the shared-memory ring's SPSC semantics, and
the coordinator's IPC span telemetry — including the regression guard that
a disabled tracer stays a single attribute check on the hot path.
"""

import dis

import pytest

from repro.dataplane.rule import Rule
from repro.errors import SimulationError
from repro.parallel.shm import ShmRing, shared_memory_available
from repro.sim import TulkunRunner
from repro.telemetry import Tracer

from tests.test_parallel_backend import build_dataset, fresh_rules


@pytest.fixture(scope="module")
def ds():
    return build_dataset("FT-4", pair_limit=6, seed=3)


def _runner(ds, **kwargs):
    kwargs.setdefault("backend", "process")
    kwargs.setdefault("workers", 2)
    return TulkunRunner(ds.topology, ds.ctx, ds.invariants, **kwargs)


class TestPersistentPool:
    def test_pool_survives_redeployment(self, ds):
        with _runner(ds) as runner:
            first = runner.burst_update(fresh_rules(ds))
            pool = runner._pool
            assert pool.generations == 1
            second = runner.burst_update(fresh_rules(ds))
            # Same processes, reset onto the new deployment — and the reset
            # path must reproduce the fork path's outcome exactly.
            assert runner._pool is pool
            assert pool.generations == 2
            assert second.holds == first.holds
            assert second.events == first.events
            assert second.messages == first.messages
            assert second.bytes_sent == first.bytes_sent
        assert pool.closed

    def test_incremental_updates_on_reset_pool(self, ds):
        """Updates applied after a redeploy run on reset (warm) workers."""
        with _runner(ds) as runner:
            runner.burst_update(fresh_rules(ds))
            runner.burst_update(fresh_rules(ds))
            dev, rules = next(
                (dev, rules)
                for dev, rules in sorted(ds.rules_by_device.items())
                if rules
            )
            live = runner.network.devices[dev].plane.rules[0]
            clone = Rule(live.match, live.action, live.priority)
            result = runner.incremental_updates([(dev, clone, live.rule_id)])
            assert len(result.times) == 1

    def test_profile_change_respawns_pool(self, ds):
        with _runner(ds) as runner:
            runner.burst_update(fresh_rules(ds))
            pool = runner._pool
            # A different worker count is an incompatible pool shape.
            runner.workers = 1
            runner.burst_update(fresh_rules(ds))
            assert runner._pool is not pool
            assert pool.closed
            assert runner._pool.num_workers == 1

    def test_worker_crash_breaks_pool_and_runner_recovers(self, ds):
        with _runner(ds) as runner:
            runner.burst_update(fresh_rules(ds))
            pool = runner._pool
            pool.kill_worker(0)
            with pytest.raises(SimulationError, match="worker 0 died"):
                runner.network.snapshot_engines()
            assert pool.broken
            # A broken pool refuses work...
            with pytest.raises(SimulationError):
                pool.send(0, ("collect",))
            # ...and the next deployment silently replaces it.
            result = runner.burst_update(fresh_rules(ds))
            assert runner._pool is not pool
            assert not runner._pool.broken
            assert all(result.holds.values())


class TestShmRing:
    def test_roundtrip_and_wraparound(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        ring = ShmRing(capacity=64)
        try:
            for i in range(20):  # > capacity total: forces wraparound
                data = bytes([i]) * 24
                pos = ring.try_write(data)
                assert pos is not None
                assert ring.read(pos, len(data)) == data
        finally:
            ring.close()

    def test_full_ring_returns_none(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        ring = ShmRing(capacity=64)
        try:
            pos = ring.try_write(b"x" * 48)
            assert pos is not None
            assert ring.try_write(b"y" * 32) is None  # only 16 bytes free
            assert ring.try_write(b"z" * 200) is None  # larger than the ring
            ring.read(pos, 48)  # consume -> space reclaimed
            assert ring.try_write(b"y" * 32) is not None
        finally:
            ring.close()

    def test_pipe_fallback_mode_matches(self, ds):
        """use_shm=False ships identical bytes over the pipe lane."""
        with _runner(ds, use_shm=False) as plain:
            baseline = plain.burst_update(fresh_rules(ds))
            assert plain._pool.use_shm is False
        with _runner(ds) as shm:
            result = shm.burst_update(fresh_rules(ds))
        assert result.holds == baseline.holds
        assert result.messages == baseline.messages
        assert result.bytes_sent == baseline.bytes_sent


class TestIpcTelemetry:
    def test_process_backend_emits_ipc_spans(self, ds):
        tracer = Tracer()
        with _runner(ds, tracer=tracer) as runner:
            runner.burst_update(fresh_rules(ds))
        ipc = [e for e in tracer.events if e.kind == "ipc"]
        assert ipc, "process backend produced no IPC spans"
        names = {e.fields["name"] for e in ipc}
        # burst command execution, cross-worker routing, waiting.
        assert "burst" in names
        assert "drain" in names
        assert "flush" in names
        assert "quiescence-probe" in names
        tracks = {e.device for e in ipc}
        assert "coordinator" in tracks
        assert any(track.startswith("worker") for track in tracks)
        for event in ipc:
            assert event.fields["finish"] >= event.fields["start"] >= 0.0

    def test_ipc_spans_export_to_chrome_trace(self, ds):
        from repro.telemetry import export_chrome_trace

        tracer = Tracer()
        with _runner(ds, tracer=tracer) as runner:
            runner.burst_update(fresh_rules(ds))
        doc = export_chrome_trace(tracer.events)
        spans = [
            e for e in doc["traceEvents"] if e.get("cat") == "ipc"
        ]
        begins = [e for e in spans if e["ph"] == "B"]
        ends = [e for e in spans if e["ph"] == "E"]
        assert begins and len(begins) == len(ends)

    def test_disabled_tracer_records_nothing(self, ds):
        tracer = Tracer(enabled=False)
        with _runner(ds, tracer=tracer) as runner:
            runner.burst_update(fresh_rules(ds))
        assert tracer.events == []
        assert tracer.clocks == {}

    def test_disabled_fast_path_is_a_single_attribute_check(self):
        """Regression guard: the first thing ``Tracer._record`` does must be
        the ``self.enabled`` test — no other attribute access, call or
        allocation may precede it, or every traced-off hot path pays it."""
        instructions = list(dis.get_instructions(Tracer._record))
        attr_loads = [
            i for i, ins in enumerate(instructions)
            if ins.opname in ("LOAD_ATTR", "LOAD_METHOD")
        ]
        assert attr_loads, "expected an attribute load in Tracer._record"
        first_attr = instructions[attr_loads[0]]
        assert first_attr.argval == "enabled", (
            f"first attribute touched is {first_attr.argval!r}, "
            "not the enabled guard"
        )
        # ...and the guard must branch before anything heavier happens.
        jump_index = next(
            i for i, ins in enumerate(instructions)
            if "JUMP" in ins.opname or ins.opname.startswith("POP_JUMP")
        )
        assert jump_index <= attr_loads[0] + 3, (
            "enabled guard does not branch immediately"
        )
