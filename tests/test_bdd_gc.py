"""Node-table garbage collection: reclamation, id-remap invariance, safety.

``collect()`` compacts the node table and rewrites every live node id, so
every observable property of surviving predicates — model counts, equality,
implication, serialized wire bytes — must be bit-for-bit identical before
and after a sweep, and predicates built *before* a sweep must interoperate
with predicates built *after* it.  The last test forces collections at
every verifier safe point during a full distributed run and demands the
same verdicts and canonical counting fingerprints as a GC-free run.
"""

import random

import pytest

from repro.bdd import PacketSpaceContext
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.serialize import deserialize_predicate, serialize_predicate
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Rule
from repro.sim import TulkunRunner
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes


def random_predicates(ctx, rng, count=12):
    """A spread of prefix/field predicates plus boolean mixes of them."""
    preds = []
    for _ in range(count):
        octet = rng.randrange(256)
        plen = rng.choice([8, 16, 24, 30])
        preds.append(ctx.ip_prefix(f"10.{octet}.0.0/{plen}"))
    for _ in range(count):
        a, b = rng.sample(preds, 2)
        preds.append(rng.choice([a & b, a | b, a - b, a ^ b, ~a]))
    return preds


class TestCollect:
    def test_reclaims_dead_nodes(self, ctx):
        mgr = ctx.mgr
        keep = ctx.ip_prefix("10.0.0.0/24")
        for i in range(40):
            # Build and immediately drop predicates: their nodes (and all the
            # intermediates of the boolean ops) become garbage.
            _ = ctx.ip_prefix(f"10.1.{i}.0/24") & ~keep
        before = mgr.node_count()
        reclaimed = mgr.collect()
        assert reclaimed > 0
        assert mgr.node_count() == before - reclaimed
        assert keep.count() == 2 ** (ctx.layout.num_vars - 24)
        assert mgr.stats.gc_runs == 1
        assert mgr.stats.gc_reclaimed == reclaimed

    def test_noop_when_everything_live(self, ctx):
        preds = [ctx.ip_prefix(f"10.{i}.0.0/16") for i in range(4)]
        union = preds[0] | preds[1] | preds[2] | preds[3]
        ctx.mgr.collect()  # drop the op-cache garbage first
        before = ctx.mgr.node_count()
        assert ctx.mgr.collect() == 0
        assert ctx.mgr.node_count() == before
        assert not union.is_empty

    def test_observables_survive_collect(self, ctx):
        rng = random.Random(11)
        preds = random_predicates(ctx, rng)
        counts = [p.count() for p in preds]
        wire = [serialize_predicate(p) for p in preds]
        equal = [
            (i, j, preds[i] == preds[j], preds[i].covers(preds[j]))
            for i in range(len(preds))
            for j in range(len(preds))
        ]
        assert ctx.mgr.collect() > 0
        assert [p.count() for p in preds] == counts
        assert [serialize_predicate(p) for p in preds] == wire
        assert [
            (i, j, preds[i] == preds[j], preds[i].covers(preds[j]))
            for i in range(len(preds))
            for j in range(len(preds))
        ] == equal

    def test_predicates_before_and_after_sweep_interoperate(self, ctx):
        old = ctx.ip_prefix("10.0.0.0/8")
        older = ctx.ip_prefix("10.0.0.0/9")
        _ = ~older & ctx.value("dst_port", 80)  # garbage
        assert ctx.mgr.collect() > 0
        new = ctx.ip_prefix("10.128.0.0/9")
        assert older | new == old
        assert (old - new) == older
        assert old.covers(new) and old.covers(older)
        assert not new.overlaps(older)

    def test_repeated_collects_are_stable(self, ctx):
        rng = random.Random(3)
        preds = random_predicates(ctx, rng, count=6)
        wire = [serialize_predicate(p) for p in preds]
        for _ in range(3):
            ctx.mgr.collect()
            assert [serialize_predicate(p) for p in preds] == wire

    def test_codec_memos_invalidated_on_sweep(self, ctx):
        pred = ctx.ip_prefix("192.168.0.0/16") | ctx.value("dst_port", 443)
        first = serialize_predicate(pred)
        # Round-trip once so the codec's node<->bytes memos are warm, then
        # shift every id with a sweep; stale memo entries would either emit
        # wrong bytes or resurrect dangling ids here.
        assert deserialize_predicate(ctx, first) == pred
        assert ctx.mgr.collect() > 0
        assert serialize_predicate(pred) == first
        assert deserialize_predicate(ctx, first) == pred

    def test_pinned_nodes_survive(self, ctx):
        mgr = ctx.mgr
        pred = ctx.ip_prefix("172.16.0.0/12")
        count = pred.count()
        mgr.pin(pred.node)
        # Drop the only holder; the pin alone must keep the DAG alive.
        del pred
        mgr.collect()
        (pinned,) = mgr._pinned
        assert mgr.count(pinned) == count
        mgr.unpin(pinned)
        assert mgr.collect() > 0


class TestMaybeCollect:
    def test_disabled_by_default(self, ctx):
        for i in range(20):
            _ = ctx.ip_prefix(f"10.0.{i}.0/24") & ctx.value("dst_port", i)
        assert ctx.mgr.maybe_collect() == 0
        assert ctx.mgr.stats.gc_runs == 0

    def test_triggers_and_backs_off(self, ctx):
        mgr = ctx.mgr
        keep = ctx.ip_prefix("10.0.0.0/16")
        for i in range(30):
            _ = ctx.ip_prefix(f"10.{i}.0.0/16") ^ keep
        mgr.gc_threshold = 16
        assert mgr.maybe_collect() > 0
        assert mgr.stats.gc_runs == 1
        # Back-off: the threshold is re-armed above the live size so an
        # immediate retrigger on the same table is impossible.
        assert mgr.gc_threshold >= 2 * mgr.node_count() or (
            mgr.gc_threshold == 16 and mgr.node_count() < 8
        )
        assert mgr.maybe_collect() == 0

    def test_below_threshold_is_noop(self, ctx):
        ctx.mgr.gc_threshold = 10**9
        _ = ctx.ip_prefix("10.0.0.0/24")
        assert ctx.mgr.maybe_collect() == 0
        assert ctx.mgr.stats.gc_runs == 0


class TestVerifierParityUnderGc:
    def _run(self, gc_threshold):
        ctx = PacketSpaceContext()
        topology = fig2a_example()
        p1 = ctx.ip_prefix("10.0.0.0/23")
        invariants = [
            reachability(p1, "S", "D"),
            waypoint_reachability(p1, "S", "W", "D"),
        ]
        planes = build_fig2_planes(ctx)
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
            for dev, plane in planes.items()
        }
        runner = TulkunRunner(
            topology, ctx, invariants, gc_threshold=gc_threshold
        )
        result = runner.burst_update(rules)
        # Churn after convergence so post-GC ids flow through the DVM too.
        runner.fail_links([("A", "W")])
        runner.recover_links([("A", "W")])
        from tests.test_parallel_backend import (
            serial_fingerprints,
            verdict_flags,
        )

        return (
            result.holds,
            verdict_flags(runner.network, invariants),
            serial_fingerprints(runner),
            ctx.mgr.stats.gc_runs,
        )

    def test_forced_midrun_collects_do_not_change_verdicts(self):
        holds_gc, flags_gc, prints_gc, gc_runs = self._run(gc_threshold=64)
        holds_ref, flags_ref, prints_ref, ref_runs = self._run(
            gc_threshold=None
        )
        assert gc_runs > 0, "threshold too high: the GC run never swept"
        assert ref_runs == 0
        assert holds_gc == holds_ref
        assert flags_gc == flags_ref
        assert prints_gc == prints_ref
