"""CLI and file-format tests: the downstream-user entry points."""

import json

import pytest

from repro.cli import main
from repro.errors import TopologyError
from repro.topology import fig2a_example
from repro.topology.fileformat import format_topology_text, parse_topology_text

TOPOLOGY = """
# the Figure 2a network
topology fig2a
link S A 0.00001
link A B 0.00001
link A W 0.00001
link B W 0.00001
link B D 0.00001
link W D 0.00001
prefix D 10.0.0.0/23
"""

FIB = """
# device S
200 10.0.0.0/23 ALL A
# device A
200 10.0.0.0/23 ALL W
# device B
10 0.0.0.0/0 DROP
# device W
200 10.0.0.0/23 ALL D
# device D
200 10.0.0.0/23 ALL @ext
"""

SPEC = """
invariant waypoint {
    packet_space: dst_ip = 10.0.0.0/23;
    ingress: S;
    behavior: exist >= 1 on (S .* W .* D) with loop_free;
}
"""

BAD_SPEC = """
invariant unreachable {
    packet_space: dst_ip = 10.0.0.0/23;
    ingress: S;
    behavior: exist >= 1 on (S .* B .* D) with loop_free;
}
"""


@pytest.fixture
def input_files(tmp_path):
    topo = tmp_path / "net.topo"
    fib = tmp_path / "net.fib"
    spec = tmp_path / "invariants.tulkun"
    topo.write_text(TOPOLOGY)
    fib.write_text(FIB)
    spec.write_text(SPEC)
    return topo, fib, spec


class TestTopologyFormat:
    def test_parse(self):
        topo = parse_topology_text(TOPOLOGY)
        assert topo.name == "fig2a"
        assert topo.num_devices == 5
        assert topo.num_links == 6
        assert topo.external_prefixes == {"D": ["10.0.0.0/23"]}

    def test_roundtrip(self):
        original = fig2a_example()
        again = parse_topology_text(format_topology_text(original))
        assert again.link_set() == original.link_set()
        assert again.external_prefixes == original.external_prefixes

    def test_isolated_device(self):
        topo = parse_topology_text("device lonely\n")
        assert topo.devices == ["lonely"]

    @pytest.mark.parametrize(
        "text",
        ["link A", "link A B xyz", "prefix A", "warp A B", "topology"],
    )
    def test_malformed(self, text):
        with pytest.raises(TopologyError):
            parse_topology_text(text)


class TestCli:
    def _args(self, command, topo, fib, spec, *extra):
        return [
            command,
            "--topology", str(topo),
            "--fib", str(fib),
            "--spec", str(spec),
            *extra,
        ]

    def test_verify_holds(self, input_files, capsys):
        topo, fib, spec = input_files
        code = main(self._args("verify", topo, fib, spec))
        out = capsys.readouterr().out
        assert code == 0
        assert "HOLDS" in out

    def test_verify_violation_exit_code(self, input_files, tmp_path, capsys):
        topo, fib, _spec = input_files
        bad = tmp_path / "bad.tulkun"
        bad.write_text(BAD_SPEC)
        code = main(self._args("verify", topo, fib, bad))
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in out
        assert "witness packet" in out or "counts=" in out

    def test_simulate(self, input_files, capsys):
        topo, fib, spec = input_files
        code = main(self._args("simulate", topo, fib, spec))
        out = capsys.readouterr().out
        assert code == 0
        assert "verification time" in out
        assert "DVM messages" in out
        assert "HOLDS" in out

    def test_dpvnet(self, input_files, capsys):
        topo, fib, spec = input_files
        code = main(self._args("dpvnet", topo, fib, spec, "--verbose"))
        out = capsys.readouterr().out
        assert code == 0
        assert "nodes" in out
        assert "tasks per device" in out
        assert "D1 *" in out  # the accepting node marker

    def test_datasets(self, capsys):
        code = main(["datasets"])
        out = capsys.readouterr().out
        assert code == 0
        assert "INet2" in out
        assert "NGDC" in out


class TestCliViolationPaths:
    def test_simulate_violation_exit_code(self, input_files, tmp_path, capsys):
        topo, fib, _spec = input_files
        bad = tmp_path / "bad.tulkun"
        bad.write_text(BAD_SPEC)
        code = main(
            [
                "simulate",
                "--topology", str(topo),
                "--fib", str(fib),
                "--spec", str(bad),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in out

    def test_verify_validate_flag(self, input_files, capsys):
        topo, fib, spec = input_files
        code = main(
            [
                "verify", "--validate",
                "--topology", str(topo),
                "--fib", str(fib),
                "--spec", str(spec),
            ]
        )
        assert code == 0


class TestCliTelemetry:
    def _simulate(self, topo, fib, spec, *extra):
        return main(
            [
                "simulate",
                "--topology", str(topo),
                "--fib", str(fib),
                "--spec", str(spec),
                "--cpu-scale", "0",
                *extra,
            ]
        )

    def test_metrics_out(self, input_files, tmp_path, capsys):
        import json

        topo, fib, spec = input_files
        out_path = tmp_path / "metrics.json"
        code = self._simulate(
            topo, fib, spec, "--chaos", "3,0.1", "--metrics-out", str(out_path)
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert set(doc) >= {"devices", "engines", "totals", "transport_summary"}
        assert set(doc["devices"]) == {"S", "A", "B", "W", "D"}
        assert doc["totals"]["messages"] > 0
        assert "retransmits" in doc["transport_summary"]

    def test_trace_records_and_replays(self, input_files, tmp_path, capsys):
        topo, fib, spec = input_files
        trace = tmp_path / "run.json"
        code = self._simulate(
            topo, fib, spec, "--chaos", "7,0.2,0.1,0.1", "--trace", str(trace)
        )
        assert code == 0
        assert trace.exists()
        for mode_args in ([], ["--predicate-index", "bdd"]):
            code = main(["replay", str(trace), *mode_args])
            out = capsys.readouterr().out
            assert code == 0, out
            assert "replay OK" in out

    def test_replay_writes_reports(self, input_files, tmp_path, capsys):
        topo, fib, _spec = input_files
        bad = tmp_path / "bad.tulkun"
        bad.write_text(BAD_SPEC)
        trace = tmp_path / "bad_run.json"
        code = self._simulate(
            topo, fib, bad, "--chaos", "3,0.15,0.1,0.1", "--trace", str(trace)
        )
        assert code == 1  # the invariant is violated; trace still recorded
        timeline = tmp_path / "timeline.txt"
        provenance = tmp_path / "provenance.txt"
        perfetto = tmp_path / "perfetto.json"
        code = main(
            [
                "replay", str(trace),
                "--timeline", str(timeline),
                "--provenance", str(provenance),
                "--perfetto", str(perfetto),
            ]
        )
        assert code == 0
        assert "verdict at S" in timeline.read_text()
        assert "violation provenance" in provenance.read_text()
        import json

        doc = json.loads(perfetto.read_text())
        assert doc["traceEvents"]

    def test_replay_detects_tampered_trace(self, input_files, tmp_path, capsys):
        import json

        topo, fib, spec = input_files
        trace = tmp_path / "run.json"
        assert self._simulate(
            topo, fib, spec, "--chaos", "7,0.2", "--trace", str(trace)
        ) == 0
        doc = json.loads(trace.read_text())
        doc["expected"]["statuses"]["waypoint"] = "VIOLATED"
        trace.write_text(json.dumps(doc))
        code = main(["replay", str(trace)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGED" in out

    def test_perfetto_export_from_simulate(self, input_files, tmp_path, capsys):
        import json

        topo, fib, spec = input_files
        perfetto = tmp_path / "trace_perfetto.json"
        code = self._simulate(topo, fib, spec, "--perfetto", str(perfetto))
        assert code == 0
        doc = json.loads(perfetto.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "B", "E"} <= phases


class TestProfileTableOrdering:
    def test_engine_rows_sorted_naturally(self, capsys):
        from repro.cli import _print_engine_table

        snap = {"ops_and": 1}
        _print_engine_table(
            {"worker10": snap, "worker2": snap, "serial": snap}
        )
        out = capsys.readouterr().out
        rows = [line.split()[0] for line in out.splitlines()[2:]]
        assert rows == ["serial", "worker2", "worker10"]

    def test_atom_rows_sorted_naturally(self, capsys):
        from repro.cli import _print_atom_table

        snap = {"atoms": 1}
        _print_atom_table({"worker12": snap, "worker3": snap})
        out = capsys.readouterr().out
        rows = [line.split()[0] for line in out.splitlines()[2:]]
        assert rows == ["worker3", "worker12"]


@pytest.mark.scenario
class TestCliExplore:
    def _args(self, topo, fib, spec, *extra):
        return [
            "explore",
            "--topology", str(topo),
            "--fib", str(fib),
            "--spec", str(spec),
            *extra,
        ]

    def test_clean_family_exits_zero(self, input_files, capsys):
        topo, fib, spec = input_files
        code = main(self._args(topo, fib, spec, "--fail-link", "B:W"))
        out = capsys.readouterr().out
        assert code == 0
        assert "explored:" in out
        assert "violated: 0" in out

    def test_violating_family_certifies_counterexample(
        self, input_files, tmp_path, capsys
    ):
        topo, fib, spec = input_files
        report = tmp_path / "explore.json"
        traces = tmp_path / "cex"
        code = main(
            self._args(
                topo, fib, spec,
                "--fail-link", "A:W", "--no-recover",
                "--report", str(report), "--traces-dir", str(traces),
            )
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "replay-certified" in out
        assert "link_down(A,W)" in out  # minimized to the single cut

        doc = json.loads(report.read_text())
        assert doc["explored"] >= 1
        assert doc["violated"] >= 1
        assert doc["explored"] + doc["pruned"] + doc["skipped"] == (
            doc["exhaustive_scenarios"]
        )
        assert doc["counterexamples"][0]["replay_ok"] is True

        # The emitted trace is a first-class replay artifact: byte-identical
        # re-execution through the public replay command, exit 0.
        trace_path = traces / "cex-0.json"
        assert trace_path.exists()
        code = main(["replay", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "byte-identical" in out

    def test_no_por_explores_more(self, input_files, tmp_path):
        topo, fib, spec = input_files
        reports = {}
        for flag, name in ((None, "por"), ("--no-por", "full")):
            path = tmp_path / f"{name}.json"
            extra = ["--fail-link", "S:A", "--fail-link", "B:D",
                     "--report", str(path)]
            if flag:
                extra.append(flag)
            main(self._args(topo, fib, spec, *extra))
            reports[name] = json.loads(path.read_text())
        assert reports["full"]["pruned"] == 0
        assert reports["por"]["pruned"] > 0
        assert reports["por"]["explored"] < reports["full"]["explored"]
        assert (
            reports["por"]["distinct_outcomes"]
            == reports["full"]["distinct_outcomes"]
        )

    def test_budget_counts_skipped(self, input_files, tmp_path):
        topo, fib, spec = input_files
        path = tmp_path / "budget.json"
        code = main(
            self._args(
                topo, fib, spec,
                "--fail-link", "S:A", "--fail-link", "B:D",
                "--budget", "2", "--report", str(path),
            )
        )
        doc = json.loads(path.read_text())
        assert doc["explored"] == 2
        assert doc["skipped"] > 0
        assert code in (0, 1)

    def test_usage_errors(self, input_files, capsys):
        topo, fib, spec = input_files
        assert main(self._args(topo, fib, spec)) == 2  # no elements
        assert main(
            self._args(topo, fib, spec, "--fail-link", "nocolon")
        ) == 2
        err = capsys.readouterr().err
        assert "fault element" in err
        assert "A:B" in err
