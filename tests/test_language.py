"""The textual invariant specification language."""

import pytest

from repro.core.counting import CountExp
from repro.core.invariant import And, Atom, EndKind, LengthFilter, MatchKind, Not, Or
from repro.core.language import parse_invariants, parse_packet_space
from repro.core.planner import Planner
from repro.errors import SpecificationError
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes

WAYPOINT_SPEC = """
invariant waypoint {
    packet_space: dst_ip = 10.0.0.0/23;
    ingress: S;
    behavior: exist >= 1 on (S .* W .* D) with loop_free;
}
"""


class TestPacketSpace:
    def test_cidr(self, ctx):
        pred = parse_packet_space(ctx, "dst_ip = 10.0.0.0/23")
        assert pred == ctx.ip_prefix("10.0.0.0/23")

    def test_conjunction_and_negation(self, ctx):
        pred = parse_packet_space(
            ctx, "dst_ip = 10.0.1.0/24 and dst_port != 80"
        )
        expected = ctx.ip_prefix("10.0.1.0/24") - ctx.value("dst_port", 80)
        assert pred == expected

    def test_disjunction_parens(self, ctx):
        pred = parse_packet_space(
            ctx, "(dst_port = 80 or dst_port = 443) and proto = 6"
        )
        expected = (ctx.value("dst_port", 80) | ctx.value("dst_port", 443)) & ctx.value("proto", 6)
        assert pred == expected

    def test_range(self, ctx):
        pred = parse_packet_space(ctx, "dst_port in 1024..2047")
        assert pred == ctx.range_("dst_port", 1024, 2047)

    def test_any(self, ctx):
        assert parse_packet_space(ctx, "any").is_universe

    def test_exact_ip(self, ctx):
        pred = parse_packet_space(ctx, "dst_ip = 10.1.2.3")
        assert pred == ctx.ip_prefix("10.1.2.3/32")

    def test_trailing_tokens_rejected(self, ctx):
        with pytest.raises(SpecificationError):
            parse_packet_space(ctx, "dst_port = 80 extra")


class TestInvariantParsing:
    def test_waypoint(self, ctx):
        (inv,) = parse_invariants(ctx, WAYPOINT_SPEC)
        assert inv.name == "waypoint"
        assert inv.ingress_set == ("S",)
        atom = inv.behavior
        assert isinstance(atom, Atom)
        assert atom.count_exp == CountExp(">=", 1)
        assert atom.path.simple_only
        assert str(atom.path.regex) == "S .* W .* D"

    def test_parsed_invariant_verifies(self, ctx):
        (inv,) = parse_invariants(ctx, WAYPOINT_SPEC)
        planes = build_fig2_planes(ctx)
        result = Planner(fig2a_example(), ctx).verify(inv, planes)
        assert not result.holds  # the paper's violated example

    def test_multiple_invariants(self, ctx):
        text = WAYPOINT_SPEC + """
        invariant iso {
            packet_space: dst_port = 80;
            ingress: S, B;
            behavior: exist == 0 on (S .* E);
        }
        """
        invs = parse_invariants(ctx, text)
        assert [inv.name for inv in invs] == ["waypoint", "iso"]
        assert invs[1].ingress_set == ("S", "B")

    def test_compound_behavior(self, ctx):
        text = """
        invariant compound {
            packet_space: any;
            ingress: S;
            behavior: (exist >= 1 on (S .* D) or exist >= 1 on (S .* E))
                      and not exist >= 1 on (S .* X);
        }
        """
        (inv,) = parse_invariants(ctx, text)
        assert isinstance(inv.behavior, And)
        left, right = inv.behavior.parts
        assert isinstance(left, Or)
        assert isinstance(right, Not)

    def test_equal_operator(self, ctx):
        text = """
        invariant rcdc {
            packet_space: dst_ip = 10.0.0.0/24;
            ingress: S;
            behavior: equal on (S .* D) with == shortest;
        }
        """
        (inv,) = parse_invariants(ctx, text)
        atom = inv.behavior
        assert atom.kind is MatchKind.EQUAL
        assert atom.path.length_filters == (LengthFilter("==", "shortest"),)

    def test_length_filter_with_offset(self, ctx):
        text = """
        invariant bounded {
            packet_space: any;
            ingress: S;
            behavior: exist >= 1 on (S .* D) with <= shortest + 2, loop_free;
        }
        """
        (inv,) = parse_invariants(ctx, text)
        atom = inv.behavior
        assert atom.path.length_filters == (LengthFilter("<=", "shortest", 2),)
        assert atom.path.simple_only

    def test_dropped_end_modifier(self, ctx):
        text = """
        invariant no_drops {
            packet_space: any;
            ingress: S;
            behavior: exist == 0 on (S .*) with dropped, <= 6;
        }
        """
        (inv,) = parse_invariants(ctx, text)
        assert inv.behavior.end_kind is EndKind.DROPPED

    def test_fault_scenes_any_k(self, ctx):
        text = """
        invariant ft {
            packet_space: any;
            ingress: S;
            behavior: exist >= 1 on (S .* D);
            fault_scenes: any 2;
        }
        """
        (inv,) = parse_invariants(ctx, text)
        assert inv.fault_spec.any_k == 2

    def test_fault_scenes_explicit(self, ctx):
        text = """
        invariant ft {
            packet_space: any;
            ingress: S;
            behavior: exist >= 1 on (S .* D);
            fault_scenes: {(A, B)}, {(B, W) (B, D)};
        }
        """
        (inv,) = parse_invariants(ctx, text)
        scenes = inv.fault_spec.scenes
        assert frozenset({("A", "B")}) in scenes
        assert frozenset({("B", "D"), ("B", "W")}) in scenes

    def test_comments_allowed(self, ctx):
        text = "# leading comment\n" + WAYPOINT_SPEC
        assert len(parse_invariants(ctx, text)) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "invariant x { ingress: S; behavior: exist >= 1 on (S); }",  # no space
            "invariant x { packet_space: any; behavior: exist >= 1 on (S); }",  # no ingress
            "invariant x { packet_space: any; ingress: S; }",  # no behavior
            "invariant x { packet_space: any; ingress: S; behavior: exist ~ 1 on (S); }",
            "invariant x { packet_space: bogus = 1; ingress: S; behavior: exist >= 1 on (S); }",
            "invariant x { packet_space: any; ingress: S; behavior: maybe on (S); }",
            "invariant { packet_space: any; ingress: S; behavior: exist >= 1 on (S); }",
        ],
    )
    def test_malformed_specs(self, ctx, text):
        with pytest.raises((SpecificationError, KeyError)):
            parse_invariants(ctx, text)
