"""Exhaustive-vs-POR differential: pruning must not change verdicts.

The partial-order reduction in :func:`repro.explore.explore_family` claims
that the interleavings it skips are equivalent to an explored
representative (disjoint (device, invariant) footprints commute, per the
protocol-orderings results).  These tests are the correctness backstop:
on the fig2a running example and on a tiny FT-4 slice, the POR run must
explore *strictly fewer* scenarios than the exhaustive run while reaching
the *identical* set of verdict outcomes — statuses, convergence flags and
byte-serialized violation regions.
"""

from __future__ import annotations

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Rule
from repro.datasets import build_dataset
from repro.explore import FaultElement, ScenarioFamily, explore_family
from repro.sim import ReliableChannel, TulkunRunner
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes

pytestmark = pytest.mark.scenario


def fig2a_harness(predicate_index="atoms", transport=True):
    """Harness factory: a fresh fig2a deployment per scenario execution."""

    def harness(tracer=None, channel=None):
        ctx = PacketSpaceContext()
        topology = fig2a_example()
        p1 = ctx.ip_prefix("10.0.0.0/23")
        invariants = [
            reachability(p1, "S", "D"),
            waypoint_reachability(p1, "S", "W", "D"),
        ]
        if channel is None and transport:
            channel = ReliableChannel()
        runner = TulkunRunner(
            topology,
            ctx,
            invariants,
            cpu_scale=0.0,
            predicate_index=predicate_index,
            tracer=tracer,
            channel=channel,
        )
        planes = build_fig2_planes(ctx)
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
            for dev, plane in planes.items()
        }
        return runner, rules

    return harness


def ft4_harness():
    """A tiny FT-4 slice: 2 sampled pairs, no rule multiplication."""

    def harness(tracer=None, channel=None):
        ds = build_dataset("FT-4", pair_limit=2, seed=3, rule_multiplier=1)
        runner = TulkunRunner(
            ds.topology,
            ds.ctx,
            ds.invariants,
            cpu_scale=0.0,
            tracer=tracer,
            channel=channel,
        )
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in dev_rules]
            for dev, dev_rules in ds.rules_by_device.items()
        }
        return runner, rules

    return harness


def differential(family, harness):
    """Run POR and exhaustive exploration; return both reports."""
    por = explore_family(family, harness, por=True, minimize=False,
                         max_counterexamples=0)
    full = explore_family(family, harness, por=False, minimize=False,
                          max_counterexamples=0)
    return por, full


class TestFig2aDifferential:
    def test_disjoint_links_prune_and_match(self):
        # S-A and B-D have disjoint endpoint footprints, so their
        # down/up chains commute and most interleavings collapse.
        family = ScenarioFamily(
            elements=(
                FaultElement("link", ("S", "A")),
                FaultElement("link", ("B", "D")),
            ),
            max_faults=2,
        )
        por, full = differential(family, fig2a_harness())
        assert full.explored == family.exhaustive_scenarios()
        assert full.pruned == 0
        assert por.explored < full.explored
        assert por.pruned > 0
        assert por.explored + por.pruned == full.explored
        assert por.outcome_keys() == full.outcome_keys()

    def test_three_fault_family_matches(self):
        # Three elements, mixed kinds, up to 2 concurrent: the POR canon
        # must still cover every reachable verdict outcome.
        family = ScenarioFamily(
            elements=(
                FaultElement("link", ("S", "A")),
                FaultElement("link", ("B", "D"), recover=False),
                FaultElement("drain", ("W",)),
            ),
            max_faults=2,
        )
        por, full = differential(family, fig2a_harness())
        assert por.explored < full.explored
        assert por.outcome_keys() == full.outcome_keys()

    def test_dependent_elements_are_not_pruned(self):
        # A-W and the drain of W share device W in their footprints:
        # nothing commutes, so POR degenerates to exhaustive exploration.
        family = ScenarioFamily(
            elements=(
                FaultElement("link", ("A", "W")),
                FaultElement("drain", ("W",)),
            ),
            max_faults=2,
        )
        por, full = differential(family, fig2a_harness())
        assert por.pruned == 0
        assert por.explored == full.explored
        assert por.outcome_keys() == full.outcome_keys()

    def test_failing_outcomes_match_too(self):
        # The verdict-outcome comparison must hold for the failing subset
        # specifically (these drive counterexample emission).
        family = ScenarioFamily(
            elements=(
                FaultElement("link", ("A", "W"), recover=False),
                FaultElement("link", ("S", "A")),
            ),
            max_faults=2,
        )
        por, full = differential(family, fig2a_harness())
        por_failing = {r.outcome for r in por.results if r.failing}
        full_failing = {r.outcome for r in full.results if r.failing}
        assert por_failing == full_failing
        assert por_failing  # the non-recovered A-W cut breaks reachability


class TestFt4Differential:
    def test_ft4_slice_differential(self):
        harness = ft4_harness()
        probe, _rules = harness()
        links = sorted(
            (link.a, link.b) for link in probe.topology.links()
        )
        probe.close()
        # Three single-step link cuts spread across the link list — the
        # slice's task placement decides what actually commutes.
        picks = [links[0], links[len(links) // 2], links[-1]]
        family = ScenarioFamily(
            elements=tuple(
                FaultElement("link", pick, recover=False) for pick in picks
            ),
            max_faults=3,
        )
        por, full = differential(family, harness)
        assert full.explored == family.exhaustive_scenarios() == 16
        assert por.explored <= full.explored
        assert por.explored + por.pruned == full.explored
        assert por.outcome_keys() == full.outcome_keys()
