"""Deeper convergence properties: randomized message timing, transforms
through the distributed protocol, and all Prop. 1 reduction modes
end-to-end."""

import random

import pytest

from repro.core.counting import CountExp
from repro.core.invariant import Atom, Invariant, MatchKind, PathExpr
from repro.core.library import non_redundant_reachability, reachability
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule, Transform
from repro.sim import TulkunRunner
from repro.topology import Topology, fig2a_example, grid
from tests.conftest import build_fig2_planes, random_dataplane


def _as_rules(planes):
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }


class TestTimingIndependence:
    """The DVM fixpoint must not depend on link latencies (message order)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_latencies_same_fixpoint(self, ctx, seed):
        rng = random.Random(seed)
        base = fig2a_example()
        topo = Topology("jittered")
        for link in base.links():
            topo.add_link(link.a, link.b, rng.uniform(1e-6, 5e-2))
        topo.external_prefixes = dict(base.external_prefixes)

        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, "S", "D")
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=seed * 7,
            deliver_at={"10.0.0.0/24": "D"},
        )
        runner = TulkunRunner(topo, ctx, [inv])
        runner.burst_update(_as_rules(planes))
        final = {d: runner.network.devices[d].plane for d in topo.devices}
        offline = Planner(topo, ctx).verify(inv, final)
        assert runner.network.all_hold(inv.name) == offline.holds


class TestTransformsDistributed:
    def test_transform_chain_converges(self, ctx):
        """Rewrite chains converge to the offline verdict through SUBSCRIBE
        and preimage mapping."""
        topo = Topology("t")
        topo.add_link("S", "N")
        topo.add_link("N", "D")
        p80 = ctx.value("dst_port", 80)
        p8080 = ctx.value("dst_port", 8080)
        planes = {n: DevicePlane(n, ctx) for n in "SND"}
        planes["S"].install_many([Rule(p80, Action.forward_all(["N"]), 1)])
        planes["N"].install_many(
            [Rule(p80, Action.forward_all(["D"], transform=Transform.set_fields(dst_port=8080)), 1)]
        )
        planes["D"].install_many([Rule(p8080, Action.deliver(), 1)])
        inv = Invariant(
            p80, ("S",),
            Atom(PathExpr.parse("S N D"), MatchKind.EXIST, CountExp(">=", 1)),
            name="nat",
        )
        runner = TulkunRunner(topo, ctx, [inv])
        result = runner.burst_update(_as_rules(planes))
        assert result.holds["nat"]

        # Incremental: the NAT rule changes target port; D no longer matches.
        network = runner.network
        n_plane = network.devices["N"].plane
        victim = n_plane.rules[0]
        network.apply_rule_update(
            "N", at=network.last_activity,
            install=Rule(
                p80,
                Action.forward_all(["D"], transform=Transform.set_fields(dst_port=9090)),
                1,
            ),
            remove_rule_id=victim.rule_id,
        )
        network.run()
        assert not network.all_hold("nat")

    def test_transform_rule_appearing_late(self, ctx):
        """A transform rule installed after convergence triggers SUBSCRIBE
        and a correct recount."""
        topo = Topology("t")
        topo.add_link("S", "N")
        topo.add_link("N", "D")
        p80 = ctx.value("dst_port", 80)
        p8080 = ctx.value("dst_port", 8080)
        planes = {n: DevicePlane(n, ctx) for n in "SND"}
        planes["S"].install_many([Rule(p80, Action.forward_all(["N"]), 1)])
        # N initially drops.
        planes["D"].install_many([Rule(p8080, Action.deliver(), 1)])
        inv = Invariant(
            p80, ("S",),
            Atom(PathExpr.parse("S N D"), MatchKind.EXIST, CountExp(">=", 1)),
            name="nat_late",
        )
        runner = TulkunRunner(topo, ctx, [inv])
        result = runner.burst_update(_as_rules(planes))
        assert not result.holds["nat_late"]
        network = runner.network
        network.apply_rule_update(
            "N", at=network.last_activity,
            install=Rule(
                p80,
                Action.forward_all(["D"], transform=Transform.set_fields(dst_port=8080)),
                1,
            ),
        )
        network.run()
        assert network.all_hold("nat_late")


class TestReductionModes:
    """Prop. 1's three reduction modes drive correct verdicts end-to-end."""

    def _diamond(self, ctx):
        topo = Topology("diamond")
        topo.add_link("S", "A")
        topo.add_link("S", "B")
        topo.add_link("A", "D")
        topo.add_link("B", "D")
        space = ctx.ip_prefix("10.0.0.0/24")
        planes = {n: DevicePlane(n, ctx) for n in "SABD"}
        planes["S"].install_many([Rule(space, Action.forward_all(["A", "B"]), 1)])
        planes["A"].install_many([Rule(space, Action.forward_all(["D"]), 1)])
        planes["B"].install_many([Rule(space, Action.forward_all(["D"]), 1)])
        planes["D"].install_many([Rule(space, Action.deliver(), 1)])
        return topo, space, planes

    def test_le_bound_detects_redundancy(self, ctx):
        """exist <= 1 with replication: the max-reduction must carry the
        violating count upstream."""
        topo, space, planes = self._diamond(ctx)
        inv = Invariant(
            space, ("S",),
            Atom(PathExpr.parse("S .* D", simple_only=True),
                 MatchKind.EXIST, CountExp("<=", 1)),
            name="at_most_one",
        )
        runner = TulkunRunner(topo, ctx, [inv])
        result = runner.burst_update(_as_rules(planes))
        assert not result.holds["at_most_one"]  # two copies delivered

    def test_eq_exact_count(self, ctx):
        topo, space, planes = self._diamond(ctx)
        inv = non_redundant_reachability(space, "S", "D")  # exist == 1
        runner = TulkunRunner(topo, ctx, [inv])
        result = runner.burst_update(_as_rules(planes))
        assert not result.holds[inv.name]  # 2 != 1
        # Remove one branch: exactly one copy → holds.
        network = runner.network
        s_plane = network.devices["S"].plane
        victim = s_plane.rules[0]
        network.apply_rule_update(
            "S", at=network.last_activity,
            install=Rule(space, Action.forward_all(["A"]), 1),
            remove_rule_id=victim.rule_id,
        )
        network.run()
        assert network.all_hold(inv.name)

    def test_eq_with_any_distinct_counts(self, ctx):
        """ANY group with asymmetric branch counts: the two-smallest
        reduction must surface the ambiguity as a violation of == 1."""
        topo = Topology("t")
        topo.add_link("S", "A")
        topo.add_link("S", "B")
        topo.add_link("A", "D")
        topo.add_link("B", "D")
        space = ctx.ip_prefix("10.0.0.0/24")
        planes = {n: DevicePlane(n, ctx) for n in "SABD"}
        planes["S"].install_many([Rule(space, Action.forward_any(["A", "B"]), 1)])
        planes["A"].install_many([Rule(space, Action.forward_all(["D"]), 1)])
        planes["B"].install_many([Rule(space, Action.drop(), 1)])  # B loses it
        planes["D"].install_many([Rule(space, Action.deliver(), 1)])
        inv = non_redundant_reachability(space, "S", "D")
        runner = TulkunRunner(topo, ctx, [inv])
        result = runner.burst_update(_as_rules(planes))
        assert not result.holds[inv.name]  # counts {0, 1} — not always 1


class TestManyInvariantsOneNetwork:
    def test_independent_verdicts(self, ctx):
        """Several invariants sharing the network get independent verdicts."""
        topo = grid(2, 3)
        space = ctx.ip_prefix("10.0.0.0/24")
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=42,
            deliver_at={"10.0.0.0/24": "g1_2"}, drop_fraction=0.0,
        )
        invs = [
            reachability(space, "g0_0", "g1_2"),
            reachability(space, "g0_1", "g1_2"),
            reachability(space, "g1_0", "g1_2"),
        ]
        runner = TulkunRunner(topo, ctx, invs)
        result = runner.burst_update(_as_rules(planes))
        final = {d: runner.network.devices[d].plane for d in topo.devices}
        planner = Planner(topo, ctx)
        for inv in invs:
            assert result.holds[inv.name] == planner.verify(inv, final).holds
