"""Coalescer correctness: squashing is invisible at quiescence.

Two layers:

* unit tests of the squash algebra itself (install→remove cancels,
  remove→install fuses to a replace, cross-device key moves split, barriers
  close batches in order);
* property tests through the full session: for seeded random bursts,
  ``apply(coalesce(burst))`` — everything in one squashed epoch — must
  reach the same quiescent state as ``apply(sequential(burst))`` — one
  epoch per event, nothing ever squashed.  This is the stronger form of
  the streaming-vs-batch differential: sequential application is the
  ground truth the coalescer must be equivalent to.

Plus the adversarial cases from the issue: install+withdraw inside one
window, an invariant retired mid-burst, and a request arriving while an
epoch is in flight (it must land in the *next* epoch, atomically).
"""

import json

import pytest

from repro.dataplane import Action, Rule
from repro.serve import Coalescer, FibBatch
from repro.serve.coalesce import Barrier
from tests.test_serve_differential import (
    assert_identical,
    collect_outcome,
    fig2a_session,
    fig2a_stream,
)

pytestmark = pytest.mark.serve


def _rule(ctx=None, priority=100):
    from repro.bdd import PacketSpaceContext
    from repro.core.language import parse_packet_space

    ctx = ctx or PacketSpaceContext()
    return Rule(
        parse_packet_space(ctx, "dst_ip = 10.0.0.0/24"),
        Action.drop(),
        priority,
    )


# ----------------------------------------------------------------------
# Squash algebra
# ----------------------------------------------------------------------
class TestSquash:
    def test_install_then_remove_cancels(self):
        c = Coalescer()
        rule = _rule()
        c.install("k", "A", rule)
        c.remove("k", "A", rule.rule_id)
        segments, events = c.drain()
        assert segments == [] and events == 2

    def test_remove_then_install_fuses_to_replace(self):
        c = Coalescer()
        rule = _rule()
        c.remove("k", "A", 17)
        c.install("k", "A", rule)
        segments, _ = c.drain()
        assert len(segments) == 1 and isinstance(segments[0], FibBatch)
        assert segments[0].ops == [("A", rule, 17)]

    def test_replace_then_remove_keeps_original_removal(self):
        c = Coalescer()
        rule = _rule()
        c.remove("k", "A", 17)
        c.install("k", "A", rule)       # replace pending
        c.remove("k", "A", rule.rule_id)  # new install withdrawn again
        segments, _ = c.drain()
        assert segments[0].ops == [("A", None, 17)]

    def test_cross_device_key_move_splits(self):
        # key removed on A, reinstalled on B: two ops, not one replace
        c = Coalescer()
        rule = _rule()
        c.remove("k", "A", 17)
        c.install("k", "B", rule)
        segments, _ = c.drain()
        assert segments[0].ops == [("A", None, 17), ("B", rule, None)]

    def test_barrier_closes_batch_and_preserves_order(self):
        c = Coalescer()
        rule_1, rule_2 = _rule(), _rule()
        c.install("k1", "A", rule_1)
        c.barrier("link", ("A", "B", False))
        c.install("k2", "B", rule_2)
        segments, events = c.drain()
        assert [type(s) for s in segments] == [FibBatch, Barrier, FibBatch]
        assert segments[0].ops == [("A", rule_1, None)]
        assert segments[1].kind == "link"
        assert segments[2].ops == [("B", rule_2, None)]
        assert events == 3

    def test_no_squash_across_barrier(self):
        # install k, BARRIER, remove k: must stay install-then-remove
        c = Coalescer()
        rule = _rule()
        c.install("k", "A", rule)
        c.barrier("crash", ("W",))
        c.remove("k", "A", rule.rule_id)
        segments, _ = c.drain()
        assert [type(s) for s in segments] == [FibBatch, Barrier, FibBatch]
        assert segments[0].ops == [("A", rule, None)]
        assert segments[2].ops == [("A", None, rule.rule_id)]

    def test_drain_is_atomic(self):
        c = Coalescer()
        c.install("k", "A", _rule())
        segments, events = c.drain()
        assert segments and events == 1
        assert not c.pending and c.events == 0
        assert c.drain() == ([], 0)


# ----------------------------------------------------------------------
# Property: coalesced == sequential at quiescence
# ----------------------------------------------------------------------
def run_coalesced(lines):
    """All events buffered into one squashed epoch."""
    session = fig2a_session()
    try:
        session.start()
        for line in lines:
            reply = session.handle_line(line)
            assert all(f["frame"] != "error" for f in reply.frames), line
        session.run_epoch("final")
        return collect_outcome(session)
    finally:
        session.close()


def run_sequential(lines):
    """One epoch per event: the never-coalesced ground truth."""
    session = fig2a_session()
    try:
        session.start()
        for line in lines:
            reply = session.handle_line(line)
            assert all(f["frame"] != "error" for f in reply.frames), line
            session.run_epoch("flush")
        assert not session.pending
        return collect_outcome(session)
    finally:
        session.close()


class TestCoalescedEqualsSequential:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_bursts(self, seed):
        lines = fig2a_stream(seed + 700, count=20)
        assert_identical(run_sequential(lines), run_coalesced(lines))

    def test_install_withdraw_same_window(self):
        """The coalesced leg never installs the rule at all; the sequential
        leg installs (flipping verdicts) then withdraws.  Quiescent states
        must still agree."""
        lines = [
            json.dumps({
                "op": "update", "device": "S",
                "install": {"key": "black", "match": "dst_ip = 10.0.0.0/23",
                            "action": "drop", "priority": 999},
            }),
            json.dumps({"op": "update", "device": "S", "remove": "black"}),
        ]
        sequential = run_sequential(lines)
        coalesced = run_coalesced(lines)
        assert_identical(sequential, coalesced)
        # and the blackhole really was observable in the sequential leg:
        # statuses after event 1 alone would be VIOLATED for both invariants
        session = fig2a_session()
        try:
            session.start()
            session.handle_line(lines[0])
            session.run_epoch("flush")
            assert set(session.runner.statuses().values()) == {"VIOLATED"}
        finally:
            session.close()

    def test_invariant_removed_mid_burst(self):
        """FIB churn, then the invariant watching it is retired, then more
        churn: the retire is a barrier, so the first batch still verifies
        under it; the final state has no trace of the removed invariant."""
        lines = [
            json.dumps({"op": "update", "device": "A", "remove": "A:0"}),
            json.dumps({"op": "invariant", "remove": "reach"}),
            json.dumps({
                "op": "update", "device": "A",
                "install": {"key": "A:0b", "match": "dst_ip = 10.0.0.0/24",
                            "action": "all B,W", "priority": 210},
            }),
        ]
        sequential = run_sequential(lines)
        coalesced = run_coalesced(lines)
        assert_identical(sequential, coalesced)
        assert "reach" not in sequential["statuses"]
        assert "waypoint" in sequential["statuses"]

    def test_event_during_in_flight_epoch_lands_in_next(self):
        """A request arriving *while an epoch is applying* must not leak
        into the draining batch — it belongs to the next epoch."""
        session = fig2a_session()
        try:
            session.start()
            intruder = json.dumps(
                {"op": "update", "device": "A", "remove": "A:1"}
            )
            fired = []
            original = session._apply_segment

            def reentrant(segment):
                # Simulates a client racing the epoch: the line arrives
                # mid-apply, exactly once.
                if not fired:
                    fired.append(True)
                    reply = session.handle_line(intruder)
                    assert reply.frames[0]["frame"] == "ack"
                return original(segment)

            session._apply_segment = reentrant
            session.handle_line(
                json.dumps({"op": "update", "device": "A", "remove": "A:0"})
            )
            frames = session.run_epoch("flush")
            delta = frames[-1]
            assert delta["epoch"] == 1 and delta["ops"] == 1  # A:0 only
            assert session.pending  # the intruder is still queued
            session._apply_segment = original
            frames = session.run_epoch("flush")
            delta = frames[-1]
            assert delta["epoch"] == 2 and delta["ops"] == 1  # now A:1
            assert not session.pending
            # End state matches feeding both updates sequentially.
            both = run_sequential([
                json.dumps({"op": "update", "device": "A", "remove": "A:0"}),
                intruder,
            ])
            assert_identical(both, collect_outcome(session))
        finally:
            session.close()
