"""Per-client subscriptions, backpressure and tenant admission control.

Pinned contracts:

* ``subscribe`` wire grammar: exactly one of ``tenants`` / ``invariants`` /
  ``all``; unknown invariant names are rejected at the session; the ack
  echoes the accepted subscription.
* Fan-out: a client subscribed to tenant ``alice`` never receives tenant
  ``bob``'s verdict deltas — ``changed`` is filtered, ``touched`` is
  filtered, and a delta with nothing relevant is suppressed entirely
  (golden-frame pinned on both the filtered and the unfiltered leg).
  Unsliced deployments keep the exact PR 9 delta shape (no ``touched``).
* Backpressure: outbound frames go through a bounded per-client queue —
  when it fills, the frame is dropped and the client's ``dropped`` counter
  flags it (surfaced in the ``stats`` frame's per-client table); a slow
  or dead peer never blocks the daemon.
* Admission: ``max_pending_per_tenant`` rejects events past a tenant's
  un-drained backlog (``tenant-backlog``), clearing on epoch drain;
  ``max_slices_per_tenant`` caps a tenant slice's invariant count
  (``tenant-quota``).  Both default to off.
"""

import io
import json
import socket
import threading
import types

import pytest

from repro.serve import (
    StreamSession,
    Subscription,
    SUBSCRIBE_ALL,
    ServeDaemon,
    decode_line,
    decode_request,
    encode_frame,
    filter_delta,
    serve_stdio,
)
from repro.serve.daemon import _Client
from repro.serve.protocol import (
    InvariantRequest,
    ProtocolError,
    SubscribeRequest,
)
from tests.test_slicing_differential import FIG2A_TENANTS, fig2a_session

pytestmark = [pytest.mark.serve, pytest.mark.slicing]

WAYPOINT_FIX = (
    '{"op":"update","device":"A","install":{"key":"fix",'
    '"match":"dst_ip = 10.0.0.0/23","action":"all W","priority":500}}'
)
EXTRA_SPEC = (
    "invariant extra {\n"
    "    packet_space: dst_ip = 10.0.0.0/23;\n"
    "    ingress: S;\n"
    "    behavior: exist >= 1 on (S .* D) with loop_free;\n"
    "}\n"
)


def run_stdio(lines, slices=FIG2A_TENANTS, **session_kwargs):
    session = fig2a_session(slices)
    if session_kwargs:
        for key, value in session_kwargs.items():
            setattr(session, key, value)
    out = io.StringIO()
    serve_stdio(session, iter(line + "\n" for line in lines), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


# ----------------------------------------------------------------------
# Wire grammar
# ----------------------------------------------------------------------
class TestSubscribeDecode:
    def test_tenants_round_trip(self):
        req = decode_request(
            decode_line('{"op":"subscribe","tenants":["alice","bob"]}')
        )
        assert isinstance(req, SubscribeRequest)
        assert req.tenants == ("alice", "bob")
        assert req.invariants is None and not req.all

    def test_invariants_round_trip(self):
        req = decode_request(
            decode_line('{"op":"subscribe","invariants":["reach"]}')
        )
        assert req.invariants == ("reach",)

    def test_all_resets(self):
        req = decode_request(decode_line('{"op":"subscribe","all":true}'))
        assert req.all

    @pytest.mark.parametrize(
        "line",
        [
            '{"op":"subscribe"}',
            '{"op":"subscribe","tenants":["a"],"all":true}',
            '{"op":"subscribe","tenants":["a"],"invariants":["b"]}',
            '{"op":"subscribe","tenants":[]}',
            '{"op":"subscribe","tenants":["a",""]}',
            '{"op":"subscribe","tenants":"a"}',
            '{"op":"subscribe","all":1}',
        ],
    )
    def test_bad_selectors_rejected(self, line):
        with pytest.raises(ProtocolError) as err:
            decode_request(decode_line(line))
        assert err.value.code == "bad-request"

    def test_invariant_add_carries_tenant(self):
        req = decode_request(
            decode_line(
                json.dumps({"op": "invariant", "add": "spec", "tenant": "t"})
            )
        )
        assert isinstance(req, InvariantRequest)
        assert req.tenant == "t"

    @pytest.mark.parametrize(
        "obj",
        [
            {"op": "invariant", "remove": "x", "tenant": "t"},
            {"op": "invariant", "add": "spec", "tenant": ""},
            {"op": "invariant", "add": "spec", "tenant": 3},
        ],
    )
    def test_bad_tenant_rejected(self, obj):
        with pytest.raises(ProtocolError):
            decode_request(decode_line(json.dumps(obj)))


# ----------------------------------------------------------------------
# Filtering semantics (pure)
# ----------------------------------------------------------------------
class TestFilterDelta:
    TENANT_OF = staticmethod(lambda name: {"w": "alice", "r": "bob"}[name])

    def delta(self, changed, touched=None):
        frame = {"frame": "delta", "epoch": 1, "changed": changed}
        if touched is not None:
            frame["touched"] = touched
        return frame

    def test_all_mode_passes_unchanged(self):
        frame = self.delta({"w": {"from": "HOLDS", "to": "VIOLATED"}})
        assert filter_delta(frame, SUBSCRIBE_ALL, self.TENANT_OF) is frame

    def test_non_delta_frames_never_filtered(self):
        sub = Subscription("tenants", frozenset({"alice"}))
        frame = {"frame": "status", "statuses": {}}
        assert filter_delta(frame, sub, self.TENANT_OF) is frame

    def test_tenant_filter_projects_changed_and_touched(self):
        sub = Subscription("tenants", frozenset({"alice"}))
        frame = self.delta(
            {"w": {"from": "HOLDS", "to": "VIOLATED"},
             "r": {"from": "HOLDS", "to": "VIOLATED"}},
            touched=["alice", "bob"],
        )
        out = filter_delta(frame, sub, self.TENANT_OF)
        assert set(out["changed"]) == {"w"}
        assert out["touched"] == ["alice"]

    def test_irrelevant_delta_suppressed(self):
        sub = Subscription("tenants", frozenset({"alice"}))
        frame = self.delta(
            {"r": {"from": "HOLDS", "to": "VIOLATED"}}, touched=["bob"]
        )
        assert filter_delta(frame, sub, self.TENANT_OF) is None

    def test_invariant_mode_filters_by_name(self):
        sub = Subscription("invariants", frozenset({"r"}))
        frame = self.delta(
            {"w": {"from": "HOLDS", "to": "VIOLATED"},
             "r": {"from": "HOLDS", "to": "VIOLATED"}},
        )
        out = filter_delta(frame, sub, self.TENANT_OF)
        assert set(out["changed"]) == {"r"}

    def test_prefix_convention_fallback(self):
        sub = Subscription("tenants", frozenset({"alice"}))
        assert sub.wants_invariant("alice/x", None)
        assert not sub.wants_invariant("bob/x", None)


# ----------------------------------------------------------------------
# Scripted stdio sessions (deterministic, golden-pinned)
# ----------------------------------------------------------------------
class TestStdioSubscribe:
    def test_subscribed_client_never_sees_other_tenants_delta(self):
        frames = run_stdio([
            '{"op":"subscribe","tenants":["alice"]}',
            '{"op":"invariant","remove":"reach"}',   # bob-only event
            '{"op":"flush"}',
            WAYPOINT_FIX,                             # alice-only change
            '{"op":"flush"}',
            '{"op":"shutdown"}',
        ])
        deltas = [f for f in frames if f["frame"] == "delta"]
        # Epoch 1 (bob's invariant retired) was suppressed entirely.
        assert [d["epoch"] for d in deltas] == [2]
        assert set(deltas[0]["changed"]) == {"waypoint"}
        assert deltas[0]["touched"] == ["alice"]

    def test_subscribe_ack_echoes_subscription(self):
        frames = run_stdio([
            '{"op":"subscribe","tenants":["alice"]}',
            '{"op":"shutdown"}',
        ])
        ack = next(f for f in frames if f.get("op") == "subscribe")
        assert ack["subscription"] == {"mode": "tenants", "names": ["alice"]}

    def test_unfiltered_leg_golden_frame(self):
        """The unfiltered delta for an invariant retirement is bytes-stable
        (settle is exactly 0.0: no forwarding change to settle)."""
        frames = run_stdio([
            '{"op":"invariant","remove":"reach"}',
            '{"op":"flush"}',
            '{"op":"shutdown"}',
        ])
        delta = next(f for f in frames if f["frame"] == "delta")
        assert encode_frame(delta) == (
            '{"changed":{"reach":{"from":"HOLDS","to":null}},'
            '"converged":true,"epoch":1,"events":1,"frame":"delta",'
            '"ops":1,"reason":"flush","settle":0.0,"touched":["bob"]}\n'
        )

    def test_subscribe_unknown_invariant_rejected(self):
        frames = run_stdio([
            '{"op":"subscribe","invariants":["nope"]}',
            '{"op":"shutdown"}',
        ])
        err = next(f for f in frames if f["frame"] == "error")
        assert err["code"] == "unknown-invariant"

    def test_subscribe_all_resets_filter(self):
        frames = run_stdio([
            '{"op":"subscribe","tenants":["alice"]}',
            '{"op":"subscribe","all":true}',
            '{"op":"invariant","remove":"reach"}',
            '{"op":"flush"}',
            '{"op":"shutdown"}',
        ])
        deltas = [f for f in frames if f["frame"] == "delta"]
        assert deltas and set(deltas[0]["changed"]) == {"reach"}

    def test_unsliced_delta_keeps_prior_shape(self):
        frames = run_stdio(
            [
                '{"op":"update","device":"A","remove":"A:0"}',
                '{"op":"flush"}',
                '{"op":"shutdown"}',
            ],
            slices=None,
        )
        delta = next(f for f in frames if f["frame"] == "delta")
        assert "touched" not in delta

    def test_invariant_add_with_tenant_routes_to_that_slice(self):
        frames = run_stdio([
            json.dumps(
                {"op": "invariant", "add": EXTRA_SPEC, "tenant": "carol"}
            ),
            '{"op":"flush"}',
            '{"op":"shutdown"}',
        ])
        delta = next(f for f in frames if f["frame"] == "delta")
        assert delta["touched"] == ["carol"]
        assert set(delta["changed"]) == {"extra"}


# ----------------------------------------------------------------------
# Socket fan-out (two live clients)
# ----------------------------------------------------------------------
def test_socket_fanout_filters_per_client():
    """A subscribes to alice, B stays on the full broadcast: B sees both
    epochs, A sees only the alice one — over real sockets."""
    session = fig2a_session(FIG2A_TENANTS)
    daemon = ServeDaemon(session, coalesce_window=10.0)
    host, port = daemon.bind()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    try:
        a = socket.create_connection((host, port), timeout=30)
        a_stream = a.makefile("rw", encoding="utf-8", newline="\n")
        assert json.loads(a_stream.readline())["frame"] == "hello"
        a_stream.write('{"op":"subscribe","tenants":["alice"]}\n')
        a_stream.flush()
        assert json.loads(a_stream.readline())["frame"] == "ack"

        b = socket.create_connection((host, port), timeout=30)
        b_stream = b.makefile("rw", encoding="utf-8", newline="\n")
        assert json.loads(b_stream.readline())["frame"] == "hello"

        # Epoch 1: bob-only (invariant retirement).  B sees it...
        b_stream.write('{"op":"invariant","remove":"reach"}\n{"op":"flush"}\n')
        b_stream.flush()
        kinds = [json.loads(b_stream.readline())["frame"] for _ in range(3)]
        assert kinds == ["ack", "ack", "delta"]

        # Epoch 2: alice's verdict flips.  Both see it; A's first delta
        # ever is this one — the bob epoch never reached A.
        b_stream.write(WAYPOINT_FIX + '\n{"op":"flush"}\n')
        b_stream.flush()
        frames_b = [json.loads(b_stream.readline()) for _ in range(3)]
        assert frames_b[2]["frame"] == "delta"

        frame_a = json.loads(a_stream.readline())
        assert frame_a["frame"] == "delta"
        assert frame_a["epoch"] == 2
        assert set(frame_a["changed"]) == {"waypoint"}
        assert frame_a["touched"] == ["alice"]

        b_stream.write('{"op":"stats"}\n')
        b_stream.flush()
        stats = json.loads(b_stream.readline())
        table = {row["id"]: row for row in stats["clients"]}
        assert table[1]["subscription"] == {
            "mode": "tenants", "names": ["alice"],
        }
        assert table[2]["subscription"] == {"mode": "all"}

        b_stream.write('{"op":"shutdown"}\n')
        b_stream.flush()
        tail = [json.loads(line) for line in b_stream]
        assert tail[-1]["frame"] == "bye"
        assert json.loads(a_stream.readline())["frame"] == "bye"
        a.close()
        b.close()
    finally:
        thread.join(timeout=60)
    assert not thread.is_alive()


# ----------------------------------------------------------------------
# Backpressure (bounded queue, drop-and-flag)
# ----------------------------------------------------------------------
class _BlockedSock:
    """A peer that never drains: every send would block."""

    def send(self, data):
        raise BlockingIOError

    def close(self):
        pass


class _TrickleSock:
    """A peer draining three bytes per readiness wakeup."""

    def __init__(self):
        self.received = b""

    def send(self, data):
        taken = min(3, len(data))
        self.received += data[:taken]
        return taken

    def close(self):
        pass


class _DeadSock:
    def send(self, data):
        raise ConnectionResetError

    def close(self):
        pass


def _daemon(queue_limit=256):
    return ServeDaemon(
        types.SimpleNamespace(stats_clients=None), queue_limit=queue_limit
    )


class TestBackpressure:
    def test_full_queue_drops_and_flags(self):
        daemon = _daemon(queue_limit=2)
        client = _Client(_BlockedSock(), 1)
        daemon._clients[client.sock] = client
        for n in range(5):
            daemon._enqueue(client, f"frame-{n}\n")
        assert len(client.outq) == 2
        assert client.dropped == 3
        assert daemon._client_stats() == [{
            "id": 1,
            "queued": 2,
            "dropped": 3,
            "subscription": {"mode": "all"},
        }]

    def test_partial_sends_resume_across_flushes(self):
        daemon = _daemon()
        sock = _TrickleSock()
        client = _Client(sock, 1)
        daemon._clients[sock] = client
        daemon._enqueue(client, "abcdefgh\n")
        while client.outq:
            daemon._flush(client)
        assert sock.received == b"abcdefgh\n"
        assert client.dropped == 0

    def test_dead_peer_dropped_not_raised(self):
        daemon = _daemon()
        sock = _DeadSock()
        client = _Client(sock, 1)
        daemon._clients[sock] = client
        daemon._enqueue(client, "x\n")
        assert sock not in daemon._clients

    def test_queue_limit_floor(self):
        assert _daemon(queue_limit=0).queue_limit == 1


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def make_session(self, **kwargs):
        base = fig2a_session(FIG2A_TENANTS)
        session = StreamSession(
            base.runner, base.rules_by_device, **kwargs
        )
        return session

    def test_pending_limit_rejects_then_recovers(self):
        session = self.make_session(max_pending_per_tenant=1)
        try:
            session.start()
            ok = session.handle_line(
                '{"op":"update","device":"A","remove":"A:0"}'
            )
            assert ok.frames[0]["frame"] == "ack"
            rejected = session.handle_line(
                '{"op":"update","device":"A","remove":"A:1"}'
            )
            assert rejected.frames[0]["frame"] == "error"
            assert rejected.frames[0]["code"] == "tenant-backlog"
            stats = session.stats_frame()
            assert stats["admission"]["pending"] == {"alice": 1, "bob": 1}
            # Draining the epoch clears the backlog.
            session.run_epoch("flush")
            again = session.handle_line(
                '{"op":"update","device":"A","remove":"A:1"}'
            )
            assert again.frames[0]["frame"] == "ack"
        finally:
            session.close()

    def test_untouched_tenants_not_charged(self):
        session = self.make_session(max_pending_per_tenant=1)
        try:
            session.start()
            # A match disjoint from every tenant's packet space charges
            # nobody, so any number of them is admitted.
            for n in range(3):
                reply = session.handle_line(json.dumps({
                    "op": "update",
                    "device": "A",
                    "install": {
                        "key": f"k{n}",
                        "match": "dst_ip = 192.168.0.0/16",
                        "action": "drop",
                        "priority": 300 + n,
                    },
                }))
                assert reply.frames[0]["frame"] == "ack"
            assert session.stats_frame()["admission"]["pending"] == {}
        finally:
            session.close()

    def test_slice_quota_on_invariant_add(self):
        session = self.make_session(max_slices_per_tenant=1)
        try:
            session.start()
            # alice already holds "waypoint": a second invariant is over
            # quota; a fresh tenant is fine.
            rejected = session.handle_line(json.dumps(
                {"op": "invariant", "add": EXTRA_SPEC, "tenant": "alice"}
            ))
            assert rejected.frames[0]["code"] == "tenant-quota"
            ok = session.handle_line(json.dumps(
                {"op": "invariant", "add": EXTRA_SPEC, "tenant": "carol"}
            ))
            assert ok.frames[0]["frame"] == "ack"
        finally:
            session.close()

    def test_pending_limit_requires_slicing(self):
        base = fig2a_session(None)
        with pytest.raises(ValueError):
            StreamSession(
                base.runner, base.rules_by_device, max_pending_per_tenant=1
            )
        base.runner.close()
