"""Multi-path invariants (§7): used-path collection, symmetry,
disjointness."""

import pytest

from repro.core.invariant import PathExpr
from repro.core.multipath import (
    link_disjoint,
    node_disjoint,
    route_symmetric,
    used_paths,
    verify_disjointness,
    verify_route_symmetry,
)
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule, Transform
from repro.topology import Topology, fig2a_example


@pytest.fixture
def diamond(ctx):
    """S - (A | B) - D diamond with two packet spaces routed differently."""
    topo = Topology("diamond")
    topo.add_link("S", "A")
    topo.add_link("S", "B")
    topo.add_link("A", "D")
    topo.add_link("B", "D")
    upper = ctx.ip_prefix("10.1.0.0/24")
    lower = ctx.ip_prefix("10.2.0.0/24")
    planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    planes["S"].install_many(
        [
            Rule(upper, Action.forward_all(["A"]), 10),
            Rule(lower, Action.forward_all(["B"]), 10),
        ]
    )
    planes["A"].install_many([Rule(upper | lower, Action.forward_all(["D"]), 10)])
    planes["B"].install_many([Rule(upper | lower, Action.forward_all(["D"]), 10)])
    planes["D"].install_many([Rule(upper | lower, Action.deliver(), 10)])
    return topo, planes, upper, lower


class TestUsedPaths:
    def test_single_path(self, ctx, diamond):
        topo, planes, upper, _lower = diamond
        paths = used_paths(
            Planner(topo, ctx), planes, upper, "S",
            PathExpr.parse("S .* D", simple_only=True),
        )
        assert paths == frozenset({("S", "A", "D")})

    def test_ecmp_uses_both(self, ctx, diamond):
        topo, planes, upper, lower = diamond
        rule = planes["S"].rules[0]
        planes["S"].replace_rule(
            rule.rule_id, Rule(upper, Action.forward_any(["A", "B"]), 10)
        )
        paths = used_paths(
            Planner(topo, ctx), planes, upper, "S",
            PathExpr.parse("S .* D", simple_only=True),
        )
        assert paths == frozenset({("S", "A", "D"), ("S", "B", "D")})

    def test_empty_for_unrouted_space(self, ctx, diamond):
        topo, planes, _upper, _lower = diamond
        other = ctx.ip_prefix("99.0.0.0/8")
        paths = used_paths(
            Planner(topo, ctx), planes, other, "S",
            PathExpr.parse("S .* D", simple_only=True),
        )
        assert paths == frozenset()

    def test_transform_tracked(self, ctx):
        topo = Topology("chain")
        topo.add_link("S", "A")
        topo.add_link("A", "D")
        planes = {n: DevicePlane(n, ctx) for n in "SAD"}
        p80 = ctx.value("dst_port", 80)
        p8080 = ctx.value("dst_port", 8080)
        planes["S"].install_many([Rule(p80, Action.forward_all(["A"]), 1)])
        planes["A"].install_many(
            [Rule(p80, Action.forward_all(["D"], transform=Transform.set_fields(dst_port=8080)), 1)]
        )
        planes["D"].install_many([Rule(p8080, Action.deliver(), 1)])
        paths = used_paths(
            Planner(topo, ctx), planes, p80, "S",
            PathExpr.parse("S A D"),
        )
        assert paths == frozenset({("S", "A", "D")})


class TestComparisonOperators:
    def test_route_symmetric_ok(self):
        fwd = frozenset({("A", "M", "B")})
        bwd = frozenset({("B", "M", "A")})
        assert route_symmetric(fwd, bwd) == []

    def test_route_asymmetry_detected(self):
        fwd = frozenset({("A", "M", "B")})
        bwd = frozenset({("B", "N", "A")})
        problems = route_symmetric(fwd, bwd)
        assert len(problems) == 2

    def test_node_disjoint(self):
        first = frozenset({("S", "A", "D")})
        second = frozenset({("S", "B", "D")})
        assert node_disjoint(first, second) == []
        shared = frozenset({("S", "A", "D")})
        assert node_disjoint(first, shared)

    def test_link_disjoint(self):
        first = frozenset({("S", "A", "D")})
        second = frozenset({("S", "B", "D")})
        assert link_disjoint(first, second) == []
        overlapping = frozenset({("S", "A", "B", "D")})
        assert link_disjoint(first, overlapping)  # shares S-A


class TestEndToEnd:
    def test_disjointness_holds_on_diamond(self, ctx, diamond):
        topo, planes, upper, lower = diamond
        result = verify_disjointness(
            Planner(topo, ctx), planes, upper, lower, "S", "D", mode="node"
        )
        assert result.holds

    def test_disjointness_violated_when_shared(self, ctx, diamond):
        topo, planes, upper, lower = diamond
        # Route both spaces through A.
        for rule in planes["S"].rules:
            if rule.match == lower:
                planes["S"].replace_rule(
                    rule.rule_id, Rule(lower, Action.forward_all(["A"]), 10)
                )
        result = verify_disjointness(
            Planner(topo, ctx), planes, upper, lower, "S", "D", mode="node"
        )
        assert not result.holds
        assert "share" in result.violations[0].message

    def test_route_symmetry_on_fig2a(self, ctx, fig2a):
        space_fwd = ctx.ip_prefix("10.0.0.0/24")
        space_bwd = ctx.ip_prefix("10.9.0.0/24")
        planes = {n: DevicePlane(n, ctx) for n in fig2a.devices}
        # Symmetric S↔D routing via W.
        planes["S"].install_many(
            [Rule(space_fwd, Action.forward_all(["A"]), 1),
             Rule(space_bwd, Action.deliver(), 1)]
        )
        planes["A"].install_many(
            [Rule(space_fwd, Action.forward_all(["W"]), 1),
             Rule(space_bwd, Action.forward_all(["S"]), 1)]
        )
        planes["W"].install_many(
            [Rule(space_fwd, Action.forward_all(["D"]), 1),
             Rule(space_bwd, Action.forward_all(["A"]), 1)]
        )
        planes["D"].install_many(
            [Rule(space_fwd, Action.deliver(), 1),
             Rule(space_bwd, Action.forward_all(["W"]), 1)]
        )
        planes["B"].install_many([])
        result = verify_route_symmetry(
            Planner(fig2a, ctx), planes, space_fwd, space_bwd, "S", "D"
        )
        assert result.holds

        # Break symmetry: the return path goes via B instead.
        rule = next(r for r in planes["D"].rules if r.match == space_bwd)
        planes["D"].replace_rule(
            rule.rule_id, Rule(space_bwd, Action.forward_all(["B"]), 1)
        )
        planes["B"].install_many(
            [Rule(space_bwd, Action.forward_all(["A"]), 1)]
        )
        result = verify_route_symmetry(
            Planner(fig2a, ctx), planes, space_fwd, space_bwd, "S", "D"
        )
        assert not result.holds

    def test_invalid_mode(self, ctx, diamond):
        topo, planes, upper, lower = diamond
        with pytest.raises(ValueError):
            verify_disjointness(
                Planner(topo, ctx), planes, upper, lower, "S", "D", mode="bogus"
            )
