"""Simulator and the central eventual-consistency property.

``TestConvergence`` is the crux of the reproduction's correctness story:
for randomized topologies, data planes and update orders, the distributed
DVM fixpoint at every source must equal the offline Algorithm 1 verdict on
the final data plane snapshot.
"""

import random

import pytest

from repro.core.counting import CountExp
from repro.core.invariant import Atom, Invariant, MatchKind, PathExpr
from repro.core.library import reachability, waypoint_reachability
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule
from repro.errors import SimulationError
from repro.sim import SimKernel, TulkunRunner
from repro.topology import fig2a_example, grid, random_wan
from tests.conftest import build_fig2_planes, random_dataplane


class TestKernel:
    def test_orders_events(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule_at(2.0, lambda: seen.append("b"))
        kernel.schedule_at(1.0, lambda: seen.append("a"))
        kernel.schedule_at(1.0, lambda: seen.append("a2"))
        end = kernel.run()
        assert seen == ["a", "a2", "b"]
        assert end == 2.0

    def test_schedule_into_past_rejected(self):
        kernel = SimKernel()
        kernel.schedule_at(5.0, lambda: kernel.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            kernel.run()

    def test_until_bound(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(10.0, lambda: fired.append(1))
        kernel.run(until=5.0)
        assert fired == []
        assert kernel.pending == 1

    def test_cascading_events(self):
        kernel = SimKernel()
        seen = []

        def outer():
            seen.append("outer")
            kernel.schedule_in(1.0, lambda: seen.append("inner"))

        kernel.schedule_at(0.0, outer)
        kernel.run()
        assert seen == ["outer", "inner"]

    def test_events_beyond_until_survive_into_next_run(self):
        # Load-bearing for retransmission timers: a bounded run() must not
        # discard events past the horizon — the next run() executes them.
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(10.0, lambda: fired.append("late"))
        kernel.schedule_at(3.0, lambda: fired.append("early"))
        kernel.run(until=5.0)
        assert fired == ["early"]
        assert kernel.pending == 1
        end = kernel.run()
        assert fired == ["early", "late"]
        assert end == 10.0
        assert kernel.pending == 0

    def test_equal_time_timer_vs_message_ordering(self):
        # A message delivery and a timer scheduled for the same instant run
        # in scheduling order: the earlier-armed event wins the tie.  The
        # transport relies on this (a data arrival scheduled before its own
        # RTO timer is processed first, so the ack can cancel the timer).
        kernel = SimKernel()
        seen = []
        kernel.schedule_at(1.0, lambda: seen.append("message"))
        timer = kernel.schedule_at(1.0, lambda: seen.append("timer"))
        kernel.run()
        assert seen == ["message", "timer"]
        assert timer.active is False

        kernel = SimKernel()
        seen = []
        timer = kernel.schedule_at(1.0, lambda: seen.append("timer"))
        kernel.schedule_at(1.0, lambda: seen.append("message"))
        kernel.run()
        assert seen == ["timer", "message"]

    def test_cancelled_timer_does_not_fire_or_advance_clock(self):
        kernel = SimKernel()
        fired = []
        timer = kernel.schedule_at(50.0, lambda: fired.append("t"))
        kernel.schedule_at(1.0, lambda: fired.append("m"))
        assert timer.active
        timer.cancel()
        assert not timer.active
        end = kernel.run()
        assert fired == ["m"]
        # The cancelled entry is skipped lazily: no clock advance to t=50.
        assert end == 1.0

    def test_cancel_from_handler_before_fire(self):
        # Cancelling at the same timestamp but earlier scheduling order
        # suppresses the later entry (the lazy-cancellation race the
        # transport's ack path exercises).
        kernel = SimKernel()
        fired = []
        timer = kernel.schedule_at(2.0, lambda: fired.append("t"))
        kernel.schedule_at(1.0, timer.cancel)
        kernel.run()
        assert fired == []

    def test_cancelled_events_not_counted_against_budget(self):
        kernel = SimKernel()
        fired = []
        timers = [
            kernel.schedule_at(1.0, lambda: fired.append("t"))
            for _ in range(5)
        ]
        for timer in timers:
            timer.cancel()
        kernel.schedule_at(2.0, lambda: fired.append("m"))
        before = kernel.events_processed
        kernel.run()
        assert fired == ["m"]
        assert kernel.events_processed == before + 1


class TestBurstScenario:
    def test_fig2_burst_detects_violation(self, ctx, fig2a, fig2_spaces):
        inv = waypoint_reachability(fig2_spaces[0], "S", "W", "D")
        runner = TulkunRunner(fig2a, ctx, [inv])
        planes = build_fig2_planes(ctx)
        rules = {dev: list(plane.rules) for dev, plane in planes.items()}
        # fresh rules need fresh objects (rule ids are single-install)
        result = runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in rs]
             for dev, rs in rules.items()}
        )
        assert result.holds[inv.name] is False
        assert result.verification_time > 0
        assert result.messages > 0

    def test_verdict_matches_offline(self, ctx, fig2a, fig2_spaces):
        inv = waypoint_reachability(fig2_spaces[0], "S", "W", "D")
        runner = TulkunRunner(fig2a, ctx, [inv])
        planes = build_fig2_planes(ctx)
        result = runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        offline = Planner(fig2a, ctx).verify(
            inv, {d: runner.network.devices[d].plane for d in fig2a.devices}
        )
        assert result.holds[inv.name] == offline.holds


def _distributed_source_counts(runner, inv):
    """Collect the packet-space partition with counts at the source device."""
    for device in runner.network.devices.values():
        verifier = device.verifiers.get(inv.name)
        if verifier is None:
            continue
        counts = verifier.source_counts(inv.ingress_set[0])
        if counts is not None:
            return counts
    return None


class TestConvergence:
    """DVM fixpoint == Algorithm 1 on the final snapshot."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_planes_on_fig2a(self, ctx, seed):
        topo = fig2a_example()
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, "S", "D")
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=seed,
            deliver_at={"10.0.0.0/24": "D"},
        )
        runner = TulkunRunner(topo, ctx, [inv])
        runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        network = runner.network
        final_planes = {d: network.devices[d].plane for d in topo.devices}
        offline = Planner(topo, ctx).verify(inv, final_planes)
        assert network.all_hold(inv.name) == offline.holds, f"seed={seed}"

    @pytest.mark.parametrize("seed", range(5))
    def test_random_update_sequences_converge(self, ctx, seed):
        """Apply a random sequence of rule mutations; after quiescence the
        distributed counts must equal the offline counts exactly."""
        rng = random.Random(seed)
        topo = grid(2, 3)
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = Invariant(
            space, ("g0_0",),
            Atom(PathExpr.parse("g0_0 .* g1_2", simple_only=True),
                 MatchKind.EXIST, CountExp(">=", 1)),
            name="grid_reach",
        )
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=seed * 31,
            deliver_at={"10.0.0.0/24": "g1_2"},
        )
        runner = TulkunRunner(topo, ctx, [inv])
        runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        network = runner.network
        # Random churn.
        for _ in range(6):
            dev = rng.choice(topo.devices)
            plane = network.devices[dev].plane
            if not plane.rules or dev == "g1_2":
                continue
            victim = rng.choice(plane.rules)
            neighbors = topo.neighbors(dev)
            new_action = (
                Action.drop()
                if rng.random() < 0.2
                else Action.forward_all([rng.choice(neighbors)])
            )
            new_rule = Rule(victim.match, new_action, victim.priority)
            network.apply_rule_update(
                dev, at=network.last_activity, install=new_rule,
                remove_rule_id=victim.rule_id,
            )
            network.run()
        final_planes = {d: network.devices[d].plane for d in topo.devices}
        offline = Planner(topo, ctx).verify(inv, final_planes)
        distributed = _distributed_source_counts(runner, inv)
        # Compare the full partition, not just the verdict.
        offline_pieces = offline.source_counts["g0_0"]
        for region, cs in offline_pieces:
            for sub, dist_cs in distributed:
                piece = sub & region
                if not piece.is_empty:
                    assert dist_cs == cs, f"seed={seed}: {dist_cs} != {cs}"

    def test_wan_scale_convergence(self, ctx):
        topo = random_wan(12, 8, seed=9)
        devices = topo.devices
        src, dst = devices[0], devices[-1]
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, src, dst, max_extra_hops=2)
        planes = random_dataplane(
            topo, ctx, ["10.0.0.0/24"], seed=77,
            deliver_at={"10.0.0.0/24": dst}, drop_fraction=0.0,
        )
        runner = TulkunRunner(topo, ctx, [inv])
        runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        final = {d: runner.network.devices[d].plane for d in devices}
        offline = Planner(topo, ctx).verify(inv, final)
        assert runner.network.all_hold(inv.name) == offline.holds


class TestLinkFailures:
    def test_fail_and_recover_roundtrip(self, ctx, fig2a, fig2_spaces):
        """Failing the W-D link breaks waypoint delivery; recovery restores
        the original verdict."""
        space = fig2_spaces[0]
        inv = reachability(space, "S", "D")
        runner = TulkunRunner(fig2a, ctx, [inv])
        planes = build_fig2_planes(ctx)
        runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        network = runner.network
        baseline_holds = network.all_hold(inv.name)

        duration = runner.fail_links([("W", "D")])
        assert duration >= 0
        # With W-D down, P2 packets (forwarded A→{B,W}, B drops, W dead-ends)
        # cannot reach D: the invariant must now be violated.
        assert not network.all_hold(inv.name)

        runner.recover_links([("W", "D")])
        assert network.all_hold(inv.name) == baseline_holds

    def test_messages_cross_only_live_links(self, ctx, fig2a, fig2_spaces):
        inv = reachability(fig2_spaces[0], "S", "D")
        runner = TulkunRunner(fig2a, ctx, [inv])
        planes = build_fig2_planes(ctx)
        runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        network = runner.network
        runner.fail_links([("A", "W")])
        # No exception: messages across the dead link are dropped silently,
        # and verifiers re-route their knowledge after recovery.
        runner.recover_links([("A", "W")])
        final = {d: network.devices[d].plane for d in fig2a.devices}
        offline = Planner(fig2a, ctx).verify(inv, final)
        assert network.all_hold(inv.name) == offline.holds


class TestMetrics:
    def test_metrics_populated(self, ctx, fig2a, fig2_spaces):
        inv = reachability(fig2_spaces[0], "S", "D")
        runner = TulkunRunner(fig2a, ctx, [inv])
        planes = build_fig2_planes(ctx)
        result = runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        metrics = runner.network.metrics
        assert result.events == runner.network.kernel.events_processed
        assert sum(m.events_processed for m in metrics.devices.values()) > 0
        assert metrics.total_messages() == result.messages
        assert any(m.init_cost > 0 for m in metrics.devices.values())
