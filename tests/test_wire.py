"""DVM byte codec: roundtrips, cross-context decoding, error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.core.wire import decode_message, encode_message
from repro.errors import SerializationError


class TestUpdateRoundtrip:
    def test_basic(self, ctx):
        a = ctx.ip_prefix("10.0.0.0/24")
        b = ctx.ip_prefix("10.0.1.0/24")
        message = UpdateMessage(
            (7, 13), a | b, ((a, ((1,), (2,))), (b, ((0,),)))
        )
        back = decode_message(ctx, encode_message(message))
        assert isinstance(back, UpdateMessage)
        assert back.intended_link == (7, 13)
        assert back.withdrawn == message.withdrawn
        assert back.results == message.results

    def test_cross_context(self):
        sender = PacketSpaceContext()
        receiver = PacketSpaceContext()
        pred = sender.ip_prefix("172.16.0.0/12")
        message = UpdateMessage((1, 2), pred, ((pred, ((3,),)),))
        back = decode_message(receiver, encode_message(message))
        assert back.results[0][1] == ((3,),)
        assert back.withdrawn.count() == pred.count()

    def test_empty_update(self, ctx):
        message = UpdateMessage((0, 1), ctx.empty, ())
        back = decode_message(ctx, encode_message(message))
        assert back.results == ()
        assert back.withdrawn.is_empty

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 255),
                st.lists(
                    st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=3,
                ),
            ),
            min_size=0, max_size=4, unique_by=lambda item: item[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, entries):
        ctx = PacketSpaceContext(HeaderLayout.dst_only())
        results = []
        withdrawn = ctx.empty
        for octet, vectors in entries:
            pred = ctx.prefix("dst_ip", octet << 24, 8) - withdrawn
            if pred.is_empty:
                continue
            withdrawn = withdrawn | pred
            results.append((pred, tuple(sorted(set(vectors)))))
        message = UpdateMessage((5, 6), withdrawn, tuple(results))
        back = decode_message(ctx, encode_message(message))
        assert back == message


class TestSubscribeRoundtrip:
    def test_basic(self, ctx):
        message = SubscribeMessage(
            (3, 4),
            pred_from=ctx.value("dst_port", 80),
            pred_to=ctx.value("dst_port", 8080),
        )
        back = decode_message(ctx, encode_message(message))
        assert isinstance(back, SubscribeMessage)
        assert back == message


class TestErrors:
    def test_empty_bytes(self, ctx):
        with pytest.raises(SerializationError):
            decode_message(ctx, b"")

    def test_unknown_type(self, ctx):
        with pytest.raises(SerializationError):
            decode_message(ctx, b"\x09\x00\x00")

    def test_trailing_garbage(self, ctx):
        message = SubscribeMessage((0, 1), ctx.empty, ctx.empty)
        with pytest.raises(SerializationError):
            decode_message(ctx, encode_message(message) + b"\x00")

    def test_unencodable_object(self):
        with pytest.raises(SerializationError):
            encode_message(object())
