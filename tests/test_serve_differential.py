"""Streaming-vs-batch differential harness for the serving mode.

The serving daemon's core claim: however a stream of FIB updates, link
flaps, device lifecycle events and invariant changes is chunked into
coalesced epochs, the quiescent outcome is **byte-identical** to applying
the whole stream as one batch.  Each test case draws a seeded random
stream, runs it through two fresh deployments — the *batch* leg applies
everything in a single epoch, the *streaming* leg flushes at random
points — and compares:

* per-invariant statuses (HOLDS / VIOLATED / UNKNOWN...),
* per-ingress verdict flags,
* violation regions (canonical ROBDD bytes + counts + messages),
* the full canonical source-node counting state (the DVM wire content at
  fixpoint, serialized to comparable bytes).

Also pinned: *validation* is chunking-independent — a generator only emits
requests that are valid against the session's projected state, and both
legs must accept every line (no ``error`` frames), wherever the epoch
boundaries fall.

Coverage: fig2a under both predicate-index modes, fig2a lifecycle streams
(crash/drain windows over the reliable transport, honest UNKNOWN
degradation), FT-4 streams, and the process backend (pool reuse across
epochs and invariant-change redeploys).
"""

import json
import random
from pathlib import Path

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.language import parse_invariants
from repro.dataplane import DevicePlane, Rule
from repro.dataplane.fib import parse_fib_text
from repro.datasets import build_dataset
from repro.serve import StreamSession
from repro.sim import ReliableChannel, TulkunRunner
from repro.topology.fileformat import parse_topology_text
from tests.test_parallel_backend import (
    serial_fingerprints,
    verdict_flags,
    violation_fingerprints,
)

pytestmark = pytest.mark.serve

SPECS = Path(__file__).resolve().parent.parent / "examples" / "specs"

# Spec text per fig2a invariant, so streams can retire and re-deploy them.
INVARIANT_SPECS = {
    "waypoint": (
        "invariant waypoint {\n"
        "    packet_space: dst_ip = 10.0.0.0/23;\n"
        "    ingress: S;\n"
        "    behavior: exist >= 1 on (S .* W .* D) with loop_free;\n"
        "}\n"
    ),
    "reach": (
        "invariant reach {\n"
        "    packet_space: dst_ip = 10.0.0.0/23;\n"
        "    ingress: S;\n"
        "    behavior: exist >= 1 on (S .* D) with loop_free, "
        "<= shortest + 2;\n"
        "}\n"
    ),
}

# The auto-assigned keys of the fig2a FIB ("<device>:<index>" in plane
# order) — what a client knows after the hello frame.
FIG2A_KEYS = {
    "S:0": "S", "A:0": "A", "A:1": "A", "B:0": "B", "W:0": "W", "D:0": "D",
}
FIG2A_LINKS = [
    ("A", "B"), ("A", "S"), ("A", "W"), ("B", "D"), ("B", "W"), ("D", "W"),
]
MATCH_POOL = [
    "dst_ip = 10.0.0.0/23",
    "dst_ip = 10.0.0.0/24",
    "dst_ip = 10.0.1.0/24",
    "dst_ip = 10.0.0.0/25",
    "dst_ip = 10.0.0.128/25",
    "dst_ip = 10.0.1.128/25",
]


def fig2a_session(
    backend="serial",
    predicate_index="atoms",
    channel=None,
    workers=2,
):
    """A fresh fig2a deployment wrapped in an (unstarted) StreamSession."""
    ctx = PacketSpaceContext()
    topology = parse_topology_text((SPECS / "fig2a.topo").read_text())
    planes = parse_fib_text(ctx, (SPECS / "fig2a.fib").read_text())
    invariants = parse_invariants(
        ctx, (SPECS / "invariants.tulkun").read_text()
    )
    for dev in topology.devices:
        planes.setdefault(dev, DevicePlane(dev, ctx))
    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        backend=backend,
        workers=workers,
        predicate_index=predicate_index,
        channel=channel,
    )
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    return StreamSession(runner, rules)


def dataset_session(predicate_index="atoms", backend="serial", workers=2):
    """A fresh FT-4 deployment (deterministic build) as a StreamSession."""
    ds = build_dataset("FT-4", pair_limit=6, seed=3)
    runner = TulkunRunner(
        ds.topology,
        ds.ctx,
        ds.invariants,
        backend=backend,
        workers=workers,
        predicate_index=predicate_index,
    )
    return StreamSession(runner, ds.rules_by_device)


# ----------------------------------------------------------------------
# Stream generators (mirror the session's projections, so every emitted
# request is valid regardless of chunking)
# ----------------------------------------------------------------------
class StreamGen:
    """Seeded random request stream against a known topology."""

    def __init__(
        self,
        seed,
        *,
        topology,
        initial_keys,
        links,
        matches,
        invariant_specs=None,
        churn_initial=True,
        flap_links=True,
        lifecycle=False,
    ):
        self.rng = random.Random(seed)
        self.topology = topology
        # key -> device (enough to emit valid removes)
        self.keys = dict(initial_keys) if churn_initial else {}
        self.own_keys = {}
        self.links = list(links)
        self.matches = list(matches)
        self.invariant_specs = dict(invariant_specs or {})
        self.live_invs = sorted(self.invariant_specs)
        self.removed_invs = []
        self.flap_links = flap_links
        self.lifecycle = lifecycle
        self.links_down = set()
        self.down = set()
        self.drained = set()
        self.counter = 0

    # -- helpers -------------------------------------------------------
    def _avail(self, dev):
        return dev not in self.down and dev not in self.drained

    def _removable(self):
        pool = {**self.keys, **self.own_keys}
        return sorted(k for k, d in pool.items() if self._avail(d))

    def _emit_install(self):
        devices = [d for d in self.topology.devices if self._avail(d)]
        if not devices:
            return None
        dev = self.rng.choice(devices)
        key = f"g{self.counter}"
        self.counter += 1
        neighbors = [n for n in self.topology.neighbors(dev)]
        roll = self.rng.random()
        if roll < 0.2 or not neighbors:
            action = "drop"
        elif roll < 0.6:
            action = f"all {self.rng.choice(neighbors)}"
        else:
            picks = self.rng.sample(
                neighbors, k=min(len(neighbors), self.rng.choice((1, 2)))
            )
            action = f"any {','.join(picks)}"
        self.own_keys[key] = dev
        return {
            "op": "update",
            "device": dev,
            "install": {
                "key": key,
                "match": self.rng.choice(self.matches),
                "action": action,
                "priority": self.rng.randrange(150, 400),
            },
        }

    def _emit_remove(self):
        candidates = self._removable()
        if not candidates:
            return None
        key = self.rng.choice(candidates)
        dev = self.keys.pop(key, None) or self.own_keys.pop(key)
        return {"op": "update", "device": dev, "remove": key}

    def _emit_replace(self):
        # remove + install in one request (the atomic wire form)
        removal = self._emit_remove()
        if removal is None:
            return None
        install = self._emit_install()
        if install is None or install["device"] != removal["device"]:
            # keep them as two events: put the install back as-is
            return removal if install is None else [removal, install]
        removal["install"] = install["install"]
        return removal

    def _emit_link(self):
        candidates = [
            (a, b)
            for a, b in self.links
            if a not in self.down and b not in self.down
        ]
        if not candidates:
            return None
        a, b = self.rng.choice(candidates)
        link = (min(a, b), max(a, b))
        up = link in self.links_down
        if up:
            self.links_down.discard(link)
        else:
            self.links_down.add(link)
        return {"op": "link", "a": a, "b": b, "up": up}

    def _emit_lifecycle(self):
        roll = self.rng.random()
        if self.down and roll < 0.5:
            dev = self.rng.choice(sorted(self.down))
            self.down.discard(dev)
            return {"op": "restart", "device": dev}
        if self.drained and roll < 0.5:
            dev = self.rng.choice(sorted(self.drained))
            self.drained.discard(dev)
            return {"op": "restore", "device": dev}
        devices = [d for d in self.topology.devices if self._avail(d)]
        if not devices:
            return None
        dev = self.rng.choice(devices)
        if self.rng.random() < 0.5 and not self.down:
            self.down.add(dev)
            return {"op": "crash", "device": dev}
        if not self.drained:
            self.drained.add(dev)
            return {"op": "drain", "device": dev}
        return None

    def _emit_invariant(self):
        if self.live_invs and (not self.removed_invs or self.rng.random() < 0.5):
            name = self.rng.choice(self.live_invs)
            self.live_invs.remove(name)
            self.removed_invs.append(name)
            return {"op": "invariant", "remove": name}
        if self.removed_invs:
            name = self.rng.choice(self.removed_invs)
            self.removed_invs.remove(name)
            self.live_invs.append(name)
            return {"op": "invariant", "add": self.invariant_specs[name]}
        return None

    # -- driver --------------------------------------------------------
    def generate(self, count):
        kinds = ["install", "install", "remove", "replace"]
        if self.flap_links:
            kinds += ["link", "link"]
        if self.lifecycle:
            kinds += ["lifecycle", "lifecycle"]
        if self.invariant_specs:
            kinds += ["invariant"]
        lines = []
        while len(lines) < count:
            kind = self.rng.choice(kinds)
            event = getattr(self, f"_emit_{kind}" if kind != "lifecycle"
                            else "_emit_lifecycle")()
            if event is None:
                continue
            if isinstance(event, list):
                lines.extend(json.dumps(e) for e in event)
            else:
                lines.append(json.dumps(event))
        return lines[:count]


def fig2a_stream(seed, *, lifecycle=False, invariants=True, count=24):
    topology = parse_topology_text((SPECS / "fig2a.topo").read_text())
    return StreamGen(
        seed,
        topology=topology,
        initial_keys=FIG2A_KEYS,
        links=FIG2A_LINKS,
        matches=MATCH_POOL,
        invariant_specs=INVARIANT_SPECS if invariants else None,
        lifecycle=lifecycle,
    ).generate(count)


def ft4_stream(seed, count=12):
    ds = build_dataset("FT-4", pair_limit=6, seed=3)
    prefixes = sorted({q.prefix for q in ds.queries})
    links = [(link.a, link.b) for link in ds.topology.links()]
    return StreamGen(
        seed,
        topology=ds.topology,
        initial_keys={},        # dataset rules stay; churn is additive
        links=links,
        matches=[f"dst_ip = {p}" for p in prefixes],
    ).generate(count)


# ----------------------------------------------------------------------
# Legs + comparison
# ----------------------------------------------------------------------
def collect_outcome(session):
    runner = session.runner
    network = runner.network
    if runner.backend == "process":
        sources = network.source_fingerprints()
    else:
        sources = serial_fingerprints(runner)
    return {
        "statuses": runner.statuses(),
        "flags": verdict_flags(network, runner.invariants),
        "violations": violation_fingerprints(network, runner.invariants),
        "sources": sources,
    }


def run_stream(session_factory, lines, flush_seed=None):
    """Feed ``lines``; with ``flush_seed`` sprinkle random mid-stream
    epochs (the streaming leg), else apply everything as one batch."""
    session = session_factory()
    try:
        session.start()
        rng = random.Random(flush_seed) if flush_seed is not None else None
        for line in lines:
            reply = session.handle_line(line)
            for frame in reply.frames:
                assert frame["frame"] != "error", (line, frame)
            if rng is not None and rng.random() < 0.35:
                session.run_epoch("flush")
        session.run_epoch("final")
        assert not session.pending
        return collect_outcome(session)
    finally:
        session.close()


def assert_identical(batch, streaming):
    assert batch["statuses"] == streaming["statuses"]
    assert batch["flags"] == streaming["flags"]
    assert batch["violations"] == streaming["violations"]
    assert batch["sources"] == streaming["sources"]


def differential(make_session, lines, seed):
    batch = run_stream(make_session, lines)
    # Two independent chunkings: both must match the one-shot batch.
    for salt in (1, 2):
        streaming = run_stream(make_session, lines, flush_seed=seed * 17 + salt)
        assert_identical(batch, streaming)


# ----------------------------------------------------------------------
# fig2a, serial backend
# ----------------------------------------------------------------------
class TestFig2aStreams:
    @pytest.mark.parametrize("seed", range(12))
    def test_atoms(self, seed):
        differential(fig2a_session, fig2a_stream(seed), seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_bdd_index(self, seed):
        differential(
            lambda: fig2a_session(predicate_index="bdd"),
            fig2a_stream(seed + 100),
            seed,
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_lifecycle_over_reliable_transport(self, seed):
        """Crash/drain windows: flows may honestly give up into UNKNOWN;
        the degradation must be chunking-independent too."""
        lines = fig2a_stream(seed + 200, lifecycle=True, invariants=False)
        differential(
            lambda: fig2a_session(channel=ReliableChannel()),
            lines,
            seed,
        )


# ----------------------------------------------------------------------
# FT-4 and the process backend (heavier: marked slow, run by the CI
# serve job and the full suite)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestHeavyStreams:
    @pytest.mark.parametrize("seed", range(2))
    def test_ft4_serial_atoms(self, seed):
        differential(dataset_session, ft4_stream(seed + 300), seed)

    def test_ft4_serial_bdd(self):
        differential(
            lambda: dataset_session(predicate_index="bdd"),
            ft4_stream(310),
            310,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_fig2a_process_backend(self, seed):
        """Process pool: epochs reuse the persistent workers; invariant
        changes redeploy through the same pool with rule ids preserved."""
        lines = fig2a_stream(seed + 400)
        differential(
            lambda: fig2a_session(backend="process", workers=2),
            lines,
            seed,
        )

    def test_process_pool_reused_across_stream_epochs(self):
        """The worker pool must be forked once, then reused: generations
        only ever advance by resets, never by respawns."""
        session = fig2a_session(backend="process", workers=2)
        lines = fig2a_stream(500, invariants=True, count=10)
        redeploys = sum(1 for line in lines if '"invariant"' in line)
        try:
            session.start()
            for line in lines:
                reply = session.handle_line(line)
                assert all(f["frame"] != "error" for f in reply.frames)
                session.run_epoch("flush")
            stats = session.stats_frame()
            assert stats["pool"]["workers"] == 2
            # One fork (generation 1) plus one worker *reset* per
            # redeploy-causing invariant change — never one per epoch.
            assert stats["pool"]["generations"] == 1 + redeploys
        finally:
            session.close()
