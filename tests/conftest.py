"""Shared fixtures: the paper's running example and small helpers."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.bdd.fields import ip_to_int
from repro.dataplane import Action, DevicePlane, Rule
from repro.topology import Topology, fig2a_example


@pytest.fixture
def ctx() -> PacketSpaceContext:
    return PacketSpaceContext()


@pytest.fixture
def dst_ctx() -> PacketSpaceContext:
    """Compact destination-only layout (used by the large-scale paths)."""
    return PacketSpaceContext(HeaderLayout.dst_only())


@pytest.fixture
def fig2a() -> Topology:
    return fig2a_example()


def build_fig2_planes(ctx: PacketSpaceContext) -> Dict[str, DevicePlane]:
    """The §2 example data plane (Figure 2a), exactly as in the paper."""
    p1 = ctx.ip_prefix("10.0.0.0/23")
    p2 = ctx.ip_prefix("10.0.0.0/24")
    p3 = ctx.ip_prefix("10.0.1.0/24") & ctx.value("dst_port", 80)
    p4 = ctx.ip_prefix("10.0.1.0/24") - ctx.value("dst_port", 80)
    planes = {name: DevicePlane(name, ctx) for name in "SABWD"}
    planes["S"].install_many([Rule(p1, Action.forward_all(["A"]), 10)])
    planes["A"].install_many(
        [
            Rule(p2, Action.forward_all(["B", "W"]), 20),
            Rule(p3, Action.forward_any(["B", "W"]), 20),
            Rule(p4, Action.forward_all(["W"]), 20),
        ]
    )
    planes["B"].install_many([Rule(p3 | p4, Action.forward_all(["D"]), 10)])
    planes["W"].install_many([Rule(p1, Action.forward_all(["D"]), 10)])
    planes["D"].install_many([Rule(p1, Action.deliver(), 10)])
    return planes


def build_linear_fig2_planes(ctx: PacketSpaceContext) -> Dict[str, DevicePlane]:
    """A *correct* plane on the fig2a topology: S -> A -> W -> D, deliver.

    Both example invariants (reach S~D, waypoint S~W~D) HOLD, making this
    the baseline for fault-scenario tests that need a healthy network.
    """
    p1 = ctx.ip_prefix("10.0.0.0/23")
    planes = {name: DevicePlane(name, ctx) for name in "SABWD"}
    planes["S"].install_many([Rule(p1, Action.forward_all(["A"]), 10)])
    planes["A"].install_many([Rule(p1, Action.forward_all(["W"]), 10)])
    planes["W"].install_many([Rule(p1, Action.forward_all(["D"]), 10)])
    planes["D"].install_many([Rule(p1, Action.deliver(), 10)])
    return planes


@pytest.fixture
def fig2_planes(ctx: PacketSpaceContext) -> Dict[str, DevicePlane]:
    return build_fig2_planes(ctx)


@pytest.fixture
def fig2_spaces(ctx: PacketSpaceContext):
    """P1..P4 from Figure 2c."""
    p1 = ctx.ip_prefix("10.0.0.0/23")
    p2 = ctx.ip_prefix("10.0.0.0/24")
    p3 = ctx.ip_prefix("10.0.1.0/24") & ctx.value("dst_port", 80)
    p4 = ctx.ip_prefix("10.0.1.0/24") - ctx.value("dst_port", 80)
    return p1, p2, p3, p4


def packet(dst_ip: str, dst_port: int = 0) -> Dict[str, int]:
    """A concrete packet dict for the default layout."""
    return {
        "dst_ip": ip_to_int(dst_ip),
        "dst_port": dst_port,
        "src_ip": 0,
        "src_port": 0,
        "proto": 0,
    }


def random_dataplane(
    topology: Topology,
    ctx: PacketSpaceContext,
    prefixes: List[str],
    seed: int,
    deliver_at: Dict[str, str] | None = None,
    any_fraction: float = 0.3,
    drop_fraction: float = 0.1,
) -> Dict[str, DevicePlane]:
    """A random (possibly buggy) data plane for property tests.

    Each device gets one rule per prefix with a random action: forward to a
    random neighbor subset (ALL or ANY), drop, or deliver when it owns the
    prefix per ``deliver_at``.
    """
    rng = random.Random(seed)
    planes = {name: DevicePlane(name, ctx) for name in topology.devices}
    for prefix in prefixes:
        match = ctx.ip_prefix(prefix)
        owner = (deliver_at or {}).get(prefix)
        for dev in topology.devices:
            if dev == owner:
                planes[dev].install_many([Rule(match, Action.deliver(), 10)])
                continue
            roll = rng.random()
            neighbors = topology.neighbors(dev)
            if roll < drop_fraction or not neighbors:
                action = Action.drop()
            else:
                size = rng.randint(1, min(2, len(neighbors)))
                group = rng.sample(neighbors, size)
                if rng.random() < any_fraction and len(group) > 1:
                    action = Action.forward_any(group)
                else:
                    action = Action.forward_all(group)
            planes[dev].install_many([Rule(match, action, 10)])
    return planes
