"""Medium-scale integration: a full WAN dataset through every verification
path (offline, distributed, baselines) with error injection."""

import pytest

from repro.baselines import ApKeepVerifier
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule
from repro.datasets import build_dataset, inject_errors
from repro.sim import TulkunRunner, apply_intents, random_update_intents


@pytest.fixture(scope="module")
def ntt():
    return build_dataset("NTT", pair_limit=8, seed=21)


def fresh_rules(ds):
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in rules]
        for dev, rules in ds.rules_by_device.items()
    }


class TestMediumWan:
    def test_distributed_equals_offline_for_all_pairs(self, ntt):
        runner = TulkunRunner(ntt.topology, ntt.ctx, ntt.invariants)
        result = runner.burst_update(fresh_rules(ntt))
        final = {
            d: runner.network.devices[d].plane for d in ntt.topology.devices
        }
        planner = Planner(ntt.topology, ntt.ctx)
        for inv in ntt.invariants:
            offline = planner.verify(inv, final)
            assert result.holds[inv.name] == offline.holds, inv.name

    def test_error_injection_found_by_both_architectures(self, ntt):
        rules = fresh_rules(ntt)
        # Blackhole the first pair's prefix at a transit device on its path.
        query = ntt.queries[0]
        target = ntt.ctx.ip_prefix(query.prefix)
        dev = query.ingress
        for i, rule in enumerate(rules[dev]):
            if rule.match == target:
                rules[dev][i] = Rule(rule.match, Action.drop(), rule.priority)
                break
        runner = TulkunRunner(ntt.topology, ntt.ctx, ntt.invariants)
        result = runner.burst_update(rules)
        assert not all(result.holds.values())

        planes = {}
        for d, dev_rules in rules.items():
            plane = DevicePlane(d, ntt.ctx)
            plane.install_many(
                [Rule(r.match, r.action, r.priority) for r in dev_rules]
            )
            planes[d] = plane
        tool = ApKeepVerifier(ntt.topology, ntt.ctx, ntt.queries)
        assert not tool.burst_verify(planes).holds

    def test_incremental_churn_stays_consistent(self, ntt):
        runner = TulkunRunner(ntt.topology, ntt.ctx, ntt.invariants)
        runner.burst_update(fresh_rules(ntt))
        planes = {
            d: runner.network.devices[d].plane for d in ntt.topology.devices
        }
        intents = random_update_intents(ntt.topology, planes, 6, seed=8)
        apply_intents(runner, intents, restore=True)
        final = {
            d: runner.network.devices[d].plane for d in ntt.topology.devices
        }
        planner = Planner(ntt.topology, ntt.ctx)
        for inv in ntt.invariants:
            offline = planner.verify(inv, final)
            assert runner.network.all_hold(inv.name) == offline.holds, inv.name

    def test_metrics_accumulate_sensibly(self, ntt):
        runner = TulkunRunner(ntt.topology, ntt.ctx, ntt.invariants)
        result = runner.burst_update(fresh_rules(ntt))
        metrics = runner.network.metrics
        assert metrics.total_messages() == result.messages
        assert metrics.total_bytes() == result.bytes_sent > 0
        busiest = max(metrics.devices.values(), key=lambda m: m.busy_time)
        assert busiest.busy_time > 0
        assert result.verification_time >= 0
