"""The tulkun-serve-v1 wire layer: codec goldens, rejection, robustness.

Three contracts pinned here:

* the codec is stable — response frames serialize to exact golden bytes
  (clients may parse lines with anything, including ``grep``), and every
  request shape round-trips through decode;
* a malformed or invalid line produces a structured ``error`` frame with a
  stable code, and the session keeps serving afterwards — the daemon never
  dies on input;
* lifecycle: graceful shutdown drains in-flight (unflushed) work before
  ``bye``, and a client disconnecting mid-epoch is dropped without
  unravelling the daemon loop (the other clients still get their frames).
"""

import io
import json
import socket
import threading

import pytest

from repro.serve import (
    PROTOCOL,
    ProtocolError,
    ServeDaemon,
    StreamSession,
    decode_line,
    decode_request,
    encode_frame,
    parse_action,
    serve_stdio,
)
from repro.serve.protocol import (
    ControlRequest,
    DeviceRequest,
    InvariantRequest,
    LinkRequest,
    UpdateRequest,
)
from repro.sim import TulkunRunner
from tests.test_serve_differential import fig2a_session

pytestmark = pytest.mark.serve


# ----------------------------------------------------------------------
# Codec goldens
# ----------------------------------------------------------------------
class TestCodec:
    def test_encode_frame_golden_bytes(self):
        # Keys sorted, compact separators, one trailing newline: stable
        # enough to grep from a shell pipeline.
        frame = {"frame": "ack", "op": "update", "id": "u1"}
        assert (
            encode_frame(frame)
            == '{"frame":"ack","id":"u1","op":"update"}\n'
        )

    def test_encode_frame_nested_golden(self):
        frame = {
            "frame": "delta",
            "epoch": 2,
            "changed": {"reach": {"from": "HOLDS", "to": "VIOLATED"}},
        }
        assert encode_frame(frame) == (
            '{"changed":{"reach":{"from":"HOLDS","to":"VIOLATED"}},'
            '"epoch":2,"frame":"delta"}\n'
        )

    def test_protocol_id(self):
        assert PROTOCOL == "tulkun-serve-v1"

    def test_update_round_trip(self):
        line = json.dumps(
            {
                "op": "update",
                "device": "A",
                "remove": "A:0",
                "install": {
                    "key": "k1",
                    "match": "dst_ip = 10.0.0.0/24",
                    "action": "all B,W",
                    "priority": 300,
                },
                "id": 7,
            }
        )
        request = decode_request(decode_line(line))
        assert isinstance(request, UpdateRequest)
        assert request.device == "A"
        assert request.remove == "A:0"
        assert request.install.key == "k1"
        assert request.install.priority == 300
        assert request.id == "7"  # integer ids normalize to strings

    def test_link_and_device_round_trip(self):
        link = decode_request(decode_line('{"op":"link","a":"A","b":"B","up":false}'))
        assert isinstance(link, LinkRequest)
        assert (link.a, link.b, link.up) == ("A", "B", False)
        for op in ("crash", "restart", "drain", "restore"):
            request = decode_request(
                decode_line(json.dumps({"op": op, "device": "W"}))
            )
            assert isinstance(request, DeviceRequest)
            assert (request.op, request.device) == (op, "W")

    def test_invariant_and_control_round_trip(self):
        add = decode_request(decode_line('{"op":"invariant","add":"..."}'))
        assert isinstance(add, InvariantRequest) and add.add_spec == "..."
        rem = decode_request(decode_line('{"op":"invariant","remove":"x"}'))
        assert rem.remove == "x" and rem.add_spec is None
        for op in ("flush", "status", "stats", "shutdown"):
            request = decode_request(decode_line(json.dumps({"op": op})))
            assert isinstance(request, ControlRequest) and request.op == op

    @pytest.mark.parametrize(
        "line,code",
        [
            ("", "empty-line"),
            ("   ", "empty-line"),
            ("{not json", "bad-json"),
            ('["a","list"]', "bad-request"),
            ("42", "bad-request"),
        ],
    )
    def test_bad_lines(self, line, code):
        with pytest.raises(ProtocolError) as err:
            decode_line(line)
        assert err.value.code == code

    @pytest.mark.parametrize(
        "obj,code",
        [
            ({}, "bad-request"),                          # missing op
            ({"op": 3}, "bad-request"),
            ({"op": "teleport"}, "unknown-op"),
            ({"op": "update", "device": "A"}, "bad-request"),  # no halves
            ({"op": "update", "device": ""}, "bad-request"),
            ({"op": "update", "device": "A", "install": "x"}, "bad-request"),
            (
                {
                    "op": "update",
                    "device": "A",
                    "install": {"key": "k", "match": "m", "action": "drop",
                                "priority": "high"},
                },
                "bad-request",
            ),
            ({"op": "link", "a": "A", "b": "B"}, "bad-request"),  # no up
            ({"op": "link", "a": "A", "b": "B", "up": 1}, "bad-request"),
            ({"op": "crash"}, "bad-request"),
            ({"op": "invariant"}, "bad-request"),
            ({"op": "invariant", "add": "x", "remove": "y"}, "bad-request"),
            ({"op": "status", "id": [1]}, "bad-request"),
        ],
    )
    def test_bad_requests(self, obj, code):
        with pytest.raises(ProtocolError) as err:
            decode_request(obj)
        assert err.value.code == code

    def test_parse_action_grammar(self):
        from repro.dataplane import Action

        assert parse_action("drop") == (Action.drop(), ())
        assert parse_action("deliver") == (Action.deliver(), ())
        action, hops = parse_action("all B,W")
        assert action == Action.forward_all(("B", "W")) and hops == ("B", "W")
        action, hops = parse_action("any  B , W ")
        assert action == Action.forward_any(("B", "W"))
        with pytest.raises(ProtocolError):
            parse_action("multicast B")
        with pytest.raises(ProtocolError):
            parse_action("all")


# ----------------------------------------------------------------------
# Session-level rejection (validation against the live deployment)
# ----------------------------------------------------------------------
def _one_error(session, obj):
    reply = session.handle_line(json.dumps(obj))
    assert len(reply.frames) == 1
    frame = reply.frames[0]
    assert frame["frame"] == "error"
    return frame


class TestSessionRejection:
    @pytest.fixture()
    def session(self):
        session = fig2a_session()
        session.start()
        yield session
        session.close()

    def test_malformed_line_then_healthy(self, session):
        frame = session.handle_line("{broken").frames[0]
        assert frame["frame"] == "error" and frame["code"] == "bad-json"
        # The session survives and still serves valid requests.
        reply = session.handle_line('{"op":"status"}')
        assert reply.frames[0]["frame"] == "status"

    def test_unknown_device(self, session):
        frame = _one_error(
            session,
            {"op": "update", "device": "Z", "remove": "A:0"},
        )
        assert frame["code"] == "unknown-device"

    def test_unknown_key(self, session):
        frame = _one_error(
            session, {"op": "update", "device": "A", "remove": "nope"}
        )
        assert frame["code"] == "unknown-key"

    def test_key_device_mismatch(self, session):
        frame = _one_error(
            session, {"op": "update", "device": "B", "remove": "A:0"}
        )
        assert frame["code"] == "key-device-mismatch"

    def test_duplicate_key(self, session):
        frame = _one_error(
            session,
            {
                "op": "update",
                "device": "A",
                "install": {"key": "A:0", "match": "dst_ip = 10.0.0.0/24",
                            "action": "drop", "priority": 1},
            },
        )
        assert frame["code"] == "duplicate-key"

    def test_bad_match_and_next_hop(self, session):
        frame = _one_error(
            session,
            {
                "op": "update",
                "device": "A",
                "install": {"key": "k", "match": "dst_ip == oops",
                            "action": "drop", "priority": 1},
            },
        )
        assert frame["code"] == "bad-match"
        frame = _one_error(
            session,
            {
                "op": "update",
                "device": "A",
                "install": {"key": "k", "match": "dst_ip = 10.0.0.0/24",
                            "action": "all D", "priority": 1},
            },
        )
        assert frame["code"] == "bad-next-hop"  # D is not adjacent to A

    def test_rejected_request_has_no_effect(self, session):
        _one_error(session, {"op": "update", "device": "A", "remove": "nope"})
        assert not session.pending

    def test_link_projection(self, session):
        frame = _one_error(session, {"op": "link", "a": "S", "b": "D", "up": False})
        assert frame["code"] == "unknown-link"
        frame = _one_error(session, {"op": "link", "a": "S", "b": "A", "up": True})
        assert frame["code"] == "link-not-down"
        assert session.handle_line(
            '{"op":"link","a":"S","b":"A","up":false}'
        ).frames[0]["frame"] == "ack"
        frame = _one_error(session, {"op": "link", "a": "S", "b": "A", "up": False})
        assert frame["code"] == "link-already-down"

    def test_device_lifecycle_projection(self, session):
        assert session.handle_line(
            '{"op":"crash","device":"W"}'
        ).frames[0]["frame"] == "ack"
        assert _one_error(session, {"op": "crash", "device": "W"})["code"] == (
            "already-crashed"
        )
        # A dead device takes no FIB updates — rejected at enqueue, so the
        # verdict is the same no matter how the stream is chunked.
        assert _one_error(
            session, {"op": "update", "device": "W", "remove": "W:0"}
        )["code"] == "device-down"
        assert _one_error(session, {"op": "restart", "device": "A"})["code"] == (
            "not-crashed"
        )
        assert _one_error(session, {"op": "restore", "device": "A"})["code"] == (
            "not-drained"
        )

    def test_invariant_projection(self, session):
        assert _one_error(session, {"op": "invariant", "remove": "ghost"})[
            "code"
        ] == "unknown-invariant"
        assert _one_error(
            session, {"op": "invariant", "add": "invariant reach {}"}
        )["code"] in ("bad-spec", "duplicate-invariant")
        frame = _one_error(session, {"op": "invariant", "add": "not a spec"})
        assert frame["code"] == "bad-spec"

    def test_crash_rejected_on_process_backend(self):
        # Construction only — validation fires before any pool is spawned.
        session = fig2a_session(backend="process")
        frame = _one_error(session, {"op": "crash", "device": "W"})
        assert frame["code"] == "serial-only"

    def test_error_echoes_request_id(self, session):
        frame = _one_error(
            session, {"op": "update", "device": "A", "remove": "nope",
                      "id": "req-9"}
        )
        assert frame["id"] == "req-9"


# ----------------------------------------------------------------------
# Lifecycle: stdio loop + graceful shutdown
# ----------------------------------------------------------------------
class TestStdioLoop:
    def _run(self, lines, **kwargs):
        session = fig2a_session()
        out = io.StringIO()
        serve_stdio(session, iter(lines), out, **kwargs)
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_shutdown_drains_in_flight_epoch(self):
        # An unflushed update must still be verified before the bye.
        frames = self._run([
            '{"op":"update","device":"A","remove":"A:0"}\n',
            '{"op":"shutdown"}\n',
        ])
        kinds = [f["frame"] for f in frames]
        assert kinds == ["hello", "ack", "ack", "delta", "bye"]
        delta = frames[3]
        assert delta["reason"] == "shutdown" and delta["events"] == 1

    def test_eof_drains_like_shutdown(self):
        frames = self._run(['{"op":"update","device":"A","remove":"A:0"}\n'])
        kinds = [f["frame"] for f in frames]
        assert kinds == ["hello", "ack", "delta", "bye"]
        assert frames[2]["reason"] == "eof"

    def test_blank_and_comment_lines_skipped(self):
        frames = self._run(["\n", "# a comment\n", '{"op":"status"}\n'])
        assert [f["frame"] for f in frames] == ["hello", "status", "bye"]

    def test_coalesce_limit_forces_epoch(self):
        lines = [
            '{"op":"update","device":"A","remove":"A:0"}\n',
            '{"op":"update","device":"A","remove":"A:1"}\n',
            '{"op":"shutdown"}\n',
        ]
        frames = self._run(lines, coalesce_limit=2)
        deltas = [f for f in frames if f["frame"] == "delta"]
        assert deltas[0]["reason"] == "limit" and deltas[0]["events"] == 2

    def test_malformed_line_mid_stream_keeps_daemon_alive(self):
        frames = self._run([
            "{oops\n",
            '{"op":"update","device":"A","remove":"A:0"}\n',
            '{"op":"flush"}\n',
            '{"op":"shutdown"}\n',
        ])
        kinds = [f["frame"] for f in frames]
        assert kinds == ["hello", "error", "ack", "ack", "delta", "ack", "bye"]


# ----------------------------------------------------------------------
# Socket daemon: disconnect-mid-epoch regression
# ----------------------------------------------------------------------
@pytest.mark.serve
def test_client_disconnect_mid_epoch_does_not_kill_daemon():
    """Client A enqueues work and vanishes before the epoch broadcast;
    client B must still get the delta, and shutdown must stay graceful."""
    session = fig2a_session()
    daemon = ServeDaemon(session, coalesce_window=10.0)  # window never fires
    host, port = daemon.bind()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    try:
        a = socket.create_connection((host, port), timeout=30)
        a_stream = a.makefile("rw", encoding="utf-8", newline="\n")
        assert json.loads(a_stream.readline())["frame"] == "hello"
        a_stream.write('{"op":"update","device":"A","remove":"A:0"}\n')
        a_stream.flush()
        assert json.loads(a_stream.readline())["frame"] == "ack"

        b = socket.create_connection((host, port), timeout=30)
        b_stream = b.makefile("rw", encoding="utf-8", newline="\n")
        assert json.loads(b_stream.readline())["frame"] == "hello"

        # A drops dead with the epoch still pending...
        a.close()
        # ...B triggers the epoch; the broadcast hits A's corpse first
        # (insertion order) and must survive to reach B.
        b_stream.write('{"op":"flush"}\n')
        b_stream.flush()
        frames = [json.loads(b_stream.readline()) for _ in range(2)]
        assert [f["frame"] for f in frames] == ["ack", "delta"]
        assert frames[1]["changed"]  # the removal flipped a verdict

        b_stream.write('{"op":"shutdown"}\n')
        b_stream.flush()
        tail = [json.loads(line) for line in b_stream]
        assert tail[-1]["frame"] == "bye"
        b.close()
    finally:
        thread.join(timeout=60)
    assert not thread.is_alive()
