"""Packed atom-wire codec: round-trips, one-time definitions, parity.

Three layers of guarantees, each pinned here:

* the run packers — ``array``-based fast path and pure-``struct`` fallback
  — are inverses and *bit-compatible* with each other over random sorted
  id sets (property-based);
* a frame encoded from one worker's atom index decodes on another context
  into byte-identical predicates (packed ↔ AtomSet ↔ canonical BDD hex),
  atom definitions ship exactly once per channel, and out-of-order frames
  are rejected;
* the process backend produces byte-identical verdicts, violation regions
  and source fingerprints whether DVM frames ride the shared-memory rings
  or the inline-pipe fallback, with GC armed, in both ``--predicate-index``
  modes — on randomized differential scenarios.
"""

import random

import pytest

from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.bdd.serialize import serialize_predicate
from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.errors import SerializationError
from repro.parallel.atomwire import (
    FrameDecoder,
    FrameEncoder,
    ids_to_runs,
    pack_id_runs,
    pack_id_runs_py,
    runs_to_ids,
    set_fallback_codec,
    unpack_id_runs,
    unpack_id_runs_py,
)


# ----------------------------------------------------------------------
# Run packing (property-based)
# ----------------------------------------------------------------------
def _random_id_set(rng: random.Random) -> list:
    """A sorted id set with a mix of dense runs and isolated ids."""
    ids = set()
    for _ in range(rng.randrange(6)):
        start = rng.randrange(0, 5000)
        ids.update(range(start, start + rng.randrange(1, 40)))
    for _ in range(rng.randrange(8)):
        ids.add(rng.randrange(0, 10000))
    return sorted(ids)


class TestRunPacking:
    def test_runs_roundtrip_random(self):
        rng = random.Random(42)
        for _ in range(300):
            ids = _random_id_set(rng)
            assert runs_to_ids(ids_to_runs(ids)) == ids

    def test_pack_unpack_roundtrip_random(self):
        rng = random.Random(43)
        for _ in range(300):
            ids = _random_id_set(rng)
            assert unpack_id_runs(pack_id_runs(ids)) == ids
            assert unpack_id_runs_py(pack_id_runs_py(ids)) == ids

    def test_fast_and_fallback_are_bit_compatible(self):
        rng = random.Random(44)
        for _ in range(300):
            ids = _random_id_set(rng)
            fast = pack_id_runs(ids)
            slow = pack_id_runs_py(ids)
            assert fast == slow
            # Cross-decoding: either unpacker accepts either packer's bytes.
            assert unpack_id_runs(slow) == ids
            assert unpack_id_runs_py(fast) == ids

    def test_empty_set(self):
        assert pack_id_runs([]) == b""
        assert unpack_id_runs(b"") == []
        assert pack_id_runs_py([]) == b""

    def test_unpack_rejects_misaligned_payload(self):
        with pytest.raises(SerializationError):
            unpack_id_runs(b"\x00" * 7)
        with pytest.raises(SerializationError):
            unpack_id_runs_py(b"\x00" * 7)


# ----------------------------------------------------------------------
# Frame encode/decode across contexts
# ----------------------------------------------------------------------
def _ctx() -> PacketSpaceContext:
    return PacketSpaceContext(HeaderLayout.dst_only())


def _random_pred(ctx: PacketSpaceContext, rng: random.Random):
    """Union of a few random prefixes — overlapping, so atomization splits."""
    parts = [
        ctx.ip_prefix(
            f"10.{rng.randrange(4)}.{rng.randrange(4)}.0"
            f"/{rng.choice([16, 20, 24])}"
        )
        for _ in range(rng.randint(1, 3))
    ]
    return ctx.union(parts)


def _random_update(ctx, rng: random.Random) -> UpdateMessage:
    preds = []
    while not preds:
        candidate = _random_pred(ctx, rng)
        rest = _random_pred(ctx, rng) - candidate
        preds = [p for p in (candidate, rest) if not p.is_empty]
    results = tuple(
        (pred, ((rng.randrange(3), rng.randrange(3)),)) for pred in preds
    )
    withdrawn = ctx.union(pred for pred, _cs in results)
    return UpdateMessage((rng.randrange(50), rng.randrange(50)), withdrawn, results)


def _random_entries(ctx, rng: random.Random, count: int) -> list:
    entries = []
    for i in range(count):
        if rng.random() < 0.3:
            message = SubscribeMessage(
                (rng.randrange(50), rng.randrange(50)),
                _random_pred(ctx, rng),
                _random_pred(ctx, rng),
            )
        else:
            message = _random_update(ctx, rng)
        entries.append(
            ((f"dev{rng.randrange(5)}", i), f"dst{rng.randrange(5)}",
             f"inv{rng.randrange(2)}", message)
        )
    return entries


def _fingerprint(message) -> tuple:
    if isinstance(message, UpdateMessage):
        return (
            "U",
            message.intended_link,
            serialize_predicate(message.withdrawn),
            tuple(
                (serialize_predicate(pred), cs) for pred, cs in message.results
            ),
        )
    return (
        "S",
        message.intended_link,
        serialize_predicate(message.pred_from),
        serialize_predicate(message.pred_to),
    )


class TestFrameCodec:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_roundtrip_random_universes(self, seed):
        rng = random.Random(seed)
        sender_ctx, receiver_ctx = _ctx(), _ctx()
        encoder = FrameEncoder(0, sender_ctx.atom_index())
        decoder = FrameDecoder(receiver_ctx, receiver_ctx.atom_index())
        for _round in range(4):
            entries = _random_entries(sender_ctx, rng, rng.randint(1, 6))
            frame = encoder.encode(1, entries)
            sender, decoded = decoder.decode(frame)
            assert sender == 0
            assert len(decoded) == len(entries)
            for (key_a, dst_a, inv_a, msg_a), (key_b, dst_b, inv_b, msg_b) in zip(
                entries, decoded
            ):
                assert (key_a, dst_a, inv_a) == (key_b, dst_b, inv_b)
                # Canonical ROBDD bytes: packed runs through the receiver's
                # own atom index must reproduce the BDD hex exactly.
                assert _fingerprint(msg_a) == _fingerprint(msg_b)

    def test_definitions_ship_once_per_channel(self):
        rng = random.Random(7)
        sender_ctx, receiver_ctx = _ctx(), _ctx()
        encoder = FrameEncoder(0, sender_ctx.atom_index())
        decoder = FrameDecoder(receiver_ctx, receiver_ctx.atom_index())
        entries = _random_entries(sender_ctx, rng, 4)
        decoder.decode(encoder.encode(1, entries))
        assert encoder.stats["defs_shipped"] > 0
        # Encoding itself refines the index (later regions split atoms
        # earlier ones used), so one more pass may define the freshly-minted
        # children — after which the channel dictionary is stable.
        decoder.decode(encoder.encode(1, entries))
        stable_defs = encoder.stats["defs_shipped"]
        decoder.decode(encoder.encode(1, entries))
        assert encoder.stats["defs_shipped"] == stable_defs
        assert decoder.stats["defs_seen"] == stable_defs
        # A different destination is a different channel: defs ship again.
        encoder.encode(2, entries)
        assert encoder.stats["defs_shipped"] > stable_defs

    def test_out_of_order_frame_rejected(self):
        rng = random.Random(8)
        sender_ctx, receiver_ctx = _ctx(), _ctx()
        encoder = FrameEncoder(0, sender_ctx.atom_index())
        decoder = FrameDecoder(receiver_ctx, receiver_ctx.atom_index())
        frame1 = encoder.encode(1, _random_entries(sender_ctx, rng, 2))
        frame2 = encoder.encode(1, _random_entries(sender_ctx, rng, 2))
        decoder.decode(frame1)
        with pytest.raises(SerializationError):
            decoder.decode(frame1)  # replay
        fresh = FrameDecoder(receiver_ctx, receiver_ctx.atom_index())
        fresh.decode(frame1)
        decoder2 = FrameDecoder(receiver_ctx, receiver_ctx.atom_index())
        with pytest.raises(SerializationError):
            decoder2.decode(frame2)  # skipped frame1

    def test_bdd_mode_roundtrip(self):
        """Without an atom index regions travel as canonical BDD bytes."""
        rng = random.Random(9)
        sender_ctx, receiver_ctx = _ctx(), _ctx()
        encoder = FrameEncoder(0, None)
        decoder = FrameDecoder(receiver_ctx, None)
        entries = _random_entries(sender_ctx, rng, 3)
        _sender, decoded = decoder.decode(encoder.encode(1, entries))
        for (_, _, _, msg_a), (_, _, _, msg_b) in zip(entries, decoded):
            assert _fingerprint(msg_a) == _fingerprint(msg_b)
        assert encoder.stats["bdd_regions"] > 0
        assert encoder.stats["run_regions"] == 0

    def test_runs_frame_rejected_by_bdd_decoder(self):
        rng = random.Random(10)
        sender_ctx, receiver_ctx = _ctx(), _ctx()
        encoder = FrameEncoder(0, sender_ctx.atom_index())
        decoder = FrameDecoder(receiver_ctx, None)
        frame = encoder.encode(1, _random_entries(sender_ctx, rng, 2))
        with pytest.raises(SerializationError):
            decoder.decode(frame)

    def test_fallback_codec_frames_are_bit_identical(self):
        """The pure-Python packer must produce (and accept) the exact frame
        bytes of the ``array`` fast path."""
        rng_a, rng_b = random.Random(11), random.Random(11)
        ctx_a, ctx_b = _ctx(), _ctx()
        try:
            set_fallback_codec(False)
            enc_fast = FrameEncoder(0, ctx_a.atom_index())
            frames_fast = [
                enc_fast.encode(1, _random_entries(ctx_a, rng_a, 3))
                for _ in range(3)
            ]
            set_fallback_codec(True)
            enc_slow = FrameEncoder(0, ctx_b.atom_index())
            frames_slow = [
                enc_slow.encode(1, _random_entries(ctx_b, rng_b, 3))
                for _ in range(3)
            ]
            assert frames_fast == frames_slow
            # Decode fast-path frames with the fallback unpacker active.
            receiver = _ctx()
            decoder = FrameDecoder(receiver, receiver.atom_index())
            for frame in frames_fast:
                decoder.decode(frame)
        finally:
            set_fallback_codec(False)


# ----------------------------------------------------------------------
# Shared-memory vs pipe shipping parity (differential scenarios)
# ----------------------------------------------------------------------
def _process_outcome(topology, ctx, rules, pairs, use_shm, predicate_index):
    from repro.core.library import reachability
    from repro.dataplane.rule import Rule
    from repro.sim import TulkunRunner

    invariants = []
    for src, dst in pairs:
        prefix = topology.external_prefixes[dst][0]
        invariants.append(
            reachability(ctx.ip_prefix(prefix), src, dst, max_extra_hops=2)
        )
    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        backend="process",
        workers=2,
        gc_threshold=256,
        predicate_index=predicate_index,
        use_shm=use_shm,
    )
    fresh = {
        dev: [Rule(r.match, r.action, r.priority) for r in dev_rules]
        for dev, dev_rules in rules.items()
    }
    try:
        result = runner.burst_update(fresh)
        violations = {
            inv.name: sorted(
                (v.ingress, serialize_predicate(v.region), v.counts, v.message)
                for v in runner.network.violations(inv.name)
            )
            for inv in invariants
        }
        return {
            "holds": dict(result.holds),
            "violations": violations,
            "fingerprints": runner.network.source_fingerprints(),
            "shm_active": runner._pool.use_shm,
        }
    finally:
        runner.close()


@pytest.mark.parametrize("predicate_index", ["atoms", "bdd"])
@pytest.mark.parametrize("seed", [101, 119, 137])
def test_shm_and_pipe_shipping_parity(seed, predicate_index):
    from tests.test_differential_random import _build_scenario

    topology, ctx, rules, pairs = _build_scenario(seed)
    via_shm = _process_outcome(
        topology, ctx, rules, pairs, True, predicate_index
    )
    via_pipe = _process_outcome(
        topology, ctx, rules, pairs, False, predicate_index
    )
    assert via_pipe["shm_active"] is False
    assert via_shm["holds"] == via_pipe["holds"], f"seed={seed}"
    assert via_shm["violations"] == via_pipe["violations"], f"seed={seed}"
    assert via_shm["fingerprints"] == via_pipe["fingerprints"], f"seed={seed}"
