"""Record/replay determinism: a traced chaos run is a repro artifact.

A recorded fate schedule pins the exact protocol run: replaying it through a
:class:`ReplayChannel` must reproduce the converged verdicts, violation
regions and transport summary byte-identically — in the recorded
predicate-index mode *and* the other one, because the DVM wire is identical
across region algebras.  These tests cover the in-process path (multi-step
fig2a and FT-4 scenarios) and the self-contained :class:`TraceFile` path the
CLI uses (embedded inputs, burst scenario), plus divergence detection.
"""

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane.rule import Rule
from repro.datasets import build_dataset
from repro.errors import ReplayError
from repro.sim import ChaosConfig, TulkunRunner
from repro.telemetry import (
    ReplayChannel,
    TraceFile,
    Tracer,
    outcome_snapshot,
    replay_trace,
)
from repro.topology import fig2a_example
from tests.conftest import build_fig2_planes
from tests.test_telemetry import FIB, SPEC, TOPOLOGY, build_runner

pytestmark = pytest.mark.chaos

CHAOS = ChaosConfig(seed=11, p_loss=0.15, p_dup=0.1, p_reorder=0.15)

_STAT_KEYS = ("transmissions", "dropped", "duplicated", "delayed")


def fig2a_scenario(chaos=None, channel=None, predicate_index="atoms", tracer=None):
    """Burst + link churn over Fig. 2a — a multi-step recorded scenario."""
    ctx = PacketSpaceContext()
    topology = fig2a_example()
    p1 = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        reachability(p1, "S", "D"),
        waypoint_reachability(p1, "S", "W", "D"),
    ]
    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        cpu_scale=0.0,
        predicate_index=predicate_index,
        chaos=chaos,
        channel=channel,
        tracer=tracer,
    )
    planes = build_fig2_planes(ctx)
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    runner.burst_update(rules)
    runner.fail_links([("A", "W")])
    runner.recover_links([("A", "W")])
    return runner


def ft4_scenario(ds, chaos=None, channel=None, predicate_index="atoms", tracer=None):
    runner = TulkunRunner(
        ds.topology,
        ds.ctx,
        ds.invariants,
        cpu_scale=0.0,
        predicate_index=predicate_index,
        chaos=chaos,
        channel=channel,
        tracer=tracer,
    )
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in dev_rules]
        for dev, dev_rules in ds.rules_by_device.items()
    }
    runner.burst_update(rules)
    link = next(iter(ds.topology.links()))
    runner.fail_links([(link.a, link.b)])
    runner.recover_links([(link.a, link.b)])
    return runner


@pytest.fixture(scope="module")
def fig2a_recording():
    tracer = Tracer()
    runner = fig2a_scenario(chaos=CHAOS, tracer=tracer)
    assert runner.network.converged
    return outcome_snapshot(runner), tracer.channel_fates


@pytest.fixture(scope="module")
def ft4():
    return build_dataset("FT-4", pair_limit=8, seed=3)


class TestFig2aReplay:
    @pytest.mark.parametrize("mode", ["atoms", "bdd"])
    def test_replay_is_byte_identical(self, fig2a_recording, mode):
        expected, fates = fig2a_recording
        channel = ReplayChannel(fates, _STAT_KEYS)
        runner = fig2a_scenario(channel=channel, predicate_index=mode)
        assert outcome_snapshot(runner) == expected, f"mode={mode}"

    def test_rerecording_a_replay_reproduces_the_fates(self, fig2a_recording):
        # Tracing a replayed run re-records the schedule; it must match the
        # original transmission for transmission.
        _expected, fates = fig2a_recording
        tracer = Tracer()
        fig2a_scenario(
            channel=ReplayChannel(fates, _STAT_KEYS), tracer=tracer
        )
        assert tracer.channel_fates == fates

    def test_truncated_schedule_raises(self, fig2a_recording):
        _expected, fates = fig2a_recording
        truncated = {
            key: schedule[: len(schedule) // 2]
            for key, schedule in fates.items()
        }
        with pytest.raises(ReplayError, match="exhausted"):
            fig2a_scenario(channel=ReplayChannel(truncated, _STAT_KEYS))


class TestFattreeReplay:
    @pytest.mark.parametrize("mode", ["atoms", "bdd"])
    def test_burst_and_churn_replay(self, ft4, mode):
        tracer = Tracer()
        recorded = ft4_scenario(
            ft4, chaos=ChaosConfig(seed=4, p_loss=0.2, p_dup=0.1, p_reorder=0.1),
            tracer=tracer,
        )
        assert recorded.network.converged
        expected = outcome_snapshot(recorded)
        channel = ReplayChannel(tracer.channel_fates, _STAT_KEYS)
        replayed = ft4_scenario(ft4, channel=channel, predicate_index=mode)
        assert outcome_snapshot(replayed) == expected, f"mode={mode}"


class TestTraceFileRoundTrip:
    """The self-contained trace the CLI records: embedded inputs, burst."""

    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        tracer = Tracer()
        runner = build_runner(chaos=CHAOS, tracer=tracer)
        trace = TraceFile.from_run(
            runner,
            tracer,
            inputs={"topology": TOPOLOGY, "fib": FIB, "spec": SPEC},
        )
        path = tmp_path_factory.mktemp("trace") / "run.json"
        trace.save(str(path))
        return TraceFile.load(str(path))

    @pytest.mark.parametrize("mode", [None, "atoms", "bdd"])
    def test_replay_verifies_clean(self, trace, mode):
        runner = replay_trace(trace, predicate_index=mode)
        assert trace.verify(runner) == []

    def test_trace_carries_the_event_log(self, trace):
        events = trace.trace_events()
        assert events
        kinds = {e.kind for e in events}
        assert "dvm_send" in kinds and "verdict" in kinds

    def test_tampered_expectation_is_detected(self, trace):
        tampered = TraceFile.from_json(trace.to_json())
        tampered.expected["statuses"]["waypoint"] = "HOLDS"
        runner = replay_trace(tampered)
        mismatches = tampered.verify(runner)
        assert mismatches
        assert any("waypoint" in line for line in mismatches)

    def test_unknown_format_rejected(self, trace):
        import json as _json

        doc = _json.loads(trace.to_json())
        doc["format"] = "something-else"
        with pytest.raises(ReplayError, match="format"):
            TraceFile.from_json(_json.dumps(doc))

    def test_trace_without_inputs_refuses_cli_replay(self, trace):
        bare = TraceFile.from_json(trace.to_json())
        bare.inputs = None
        with pytest.raises(ReplayError, match="embedded inputs"):
            replay_trace(bare)
