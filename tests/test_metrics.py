"""Metrics helpers: percentiles, CDFs, device accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import DeviceMetrics, MetricsCollector, cdf_points, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.8) == 0.0

    def test_single(self):
        assert percentile([42.0], 0.8) == 42.0

    def test_median_of_two(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=30),
           st.floats(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_bounds_property(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_q(self, values):
        assert percentile(values, 0.2) <= percentile(values, 0.8)


class TestCdf:
    def test_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_last_point_is_one(self):
        points = cdf_points([5.0] * 7)
        assert points[-1][1] == 1.0


class TestCollector:
    def test_device_created_on_demand(self):
        collector = MetricsCollector()
        metrics = collector.device("X")
        assert metrics.name == "X"
        assert collector.device("X") is metrics

    def test_aggregates(self):
        collector = MetricsCollector()
        a = collector.device("a")
        b = collector.device("b")
        a.messages_sent = 3
        a.bytes_sent = 100
        a.message_costs = [0.1, 0.2]
        b.messages_sent = 2
        b.bytes_sent = 50
        b.message_costs = [0.3]
        assert collector.total_messages() == 5
        assert collector.total_bytes() == 150
        assert sorted(collector.all_message_costs()) == [0.1, 0.2, 0.3]

    def test_cpu_load(self):
        metrics = DeviceMetrics("x", busy_time=0.5)
        assert metrics.cpu_load(2.0) == 0.25
        assert metrics.cpu_load(0.0) == 0.0
