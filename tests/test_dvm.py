"""DVM protocol messages: the UPDATE principle, wire sizes."""

import pytest

from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.errors import ProtocolError


class TestUpdatePrinciple:
    def test_valid_message(self, ctx):
        a = ctx.ip_prefix("10.0.0.0/24")
        b = ctx.ip_prefix("10.0.1.0/24")
        message = UpdateMessage(
            intended_link=(1, 2),
            withdrawn=a | b,
            results=((a, ((1,),)), (b, ((0,),))),
        )
        assert message.intended_link == (1, 2)

    def test_principle_violation_rejected(self, ctx):
        """Withdrawn region larger than the announced results → protocol
        error (§5.2 UPDATE message principle)."""
        a = ctx.ip_prefix("10.0.0.0/24")
        b = ctx.ip_prefix("10.0.1.0/24")
        with pytest.raises(ProtocolError):
            UpdateMessage(
                intended_link=(1, 2),
                withdrawn=a | b,
                results=((a, ((1,),)),),
            )

    def test_results_exceeding_withdrawn_rejected(self, ctx):
        a = ctx.ip_prefix("10.0.0.0/24")
        b = ctx.ip_prefix("10.0.1.0/24")
        with pytest.raises(ProtocolError):
            UpdateMessage(
                intended_link=(1, 2),
                withdrawn=a,
                results=((a, ((1,),)), (b, ((2,),))),
            )

    def test_empty_update_allowed(self, ctx):
        message = UpdateMessage((0, 1), ctx.empty, ())
        assert message.wire_size() > 0


class TestWireSize:
    def test_update_size_grows_with_payload(self, ctx):
        a = ctx.ip_prefix("10.0.0.0/24")
        small = UpdateMessage((0, 1), a, ((a, ((1,),)),))
        big = UpdateMessage(
            (0, 1), a, ((a, tuple((i,) for i in range(50))),)
        )
        assert big.wire_size() > small.wire_size()

    def test_subscribe_size(self, ctx):
        msg = SubscribeMessage(
            (0, 1),
            pred_from=ctx.value("dst_port", 80),
            pred_to=ctx.value("dst_port", 8080),
        )
        assert msg.wire_size() > 16
