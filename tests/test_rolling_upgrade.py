"""Rolling-upgrade regression suite: drain -> verify -> restore.

The maintenance workflow of §9 as a first-class workload on the serial
backend: withdrawing a device's FIB re-verifies under the drained state,
crashing it inside the window degrades *honestly* (a transient
``UNKNOWN(unreachable_upstream)`` while neighbors churn, never a stale
verdict), restart resynchronizes, and restoring the saved rules returns
the network byte-identically to the healthy baseline.
"""

from __future__ import annotations

import pytest

from repro.bdd import PacketSpaceContext
from repro.core.library import reachability, waypoint_reachability
from repro.core.scenario import ScenarioStep
from repro.dataplane import Rule
from repro.errors import SimulationError
from repro.explore import (
    FaultElement,
    ScenarioFamily,
    explore_family,
    outcome_key,
)
from repro.sim import (
    ReliableChannel,
    TransportConfig,
    TulkunRunner,
    rolling_upgrade_steps,
    run_script,
)
from repro.topology import fig2a_example
from tests.conftest import build_linear_fig2_planes

pytestmark = pytest.mark.scenario

UNKNOWN = "UNKNOWN(unreachable_upstream)"


def healthy_runner(transport_config=None, channel="reliable"):
    ctx = PacketSpaceContext()
    topology = fig2a_example()
    p1 = ctx.ip_prefix("10.0.0.0/23")
    invariants = [
        reachability(p1, "S", "D"),
        waypoint_reachability(p1, "S", "W", "D"),
    ]
    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        cpu_scale=0.0,
        channel=ReliableChannel() if channel == "reliable" else None,
        transport_config=transport_config,
    )
    planes = build_linear_fig2_planes(ctx)
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    return runner, rules


class TestDrainRestore:
    def test_drain_verifies_under_drained_fib(self):
        runner, rules = healthy_runner()
        try:
            outcomes = run_script(
                runner, rules, [ScenarioStep("drain", ("W",))]
            )
            burst, drained = outcomes
            assert all(s == "HOLDS" for s in burst.statuses.values())
            # The drained FIB is a *verified* state, not a blind spot: W
            # forwards nothing, so both invariants are VIOLATED — and the
            # network still converges to that verdict.
            assert drained.converged
            assert all(s == "VIOLATED" for s in drained.statuses.values())
        finally:
            runner.close()

    def test_restore_returns_to_baseline_outcome(self):
        runner, rules = healthy_runner()
        try:
            baseline_runner, baseline_rules = healthy_runner()
            run_script(baseline_runner, baseline_rules, [])
            baseline = outcome_key(baseline_runner)
            baseline_runner.close()
            steps = [
                ScenarioStep("drain", ("W",)),
                ScenarioStep("restore", ("W",)),
            ]
            final = run_script(runner, rules, steps)[-1]
            assert final.converged
            assert all(s == "HOLDS" for s in final.statuses.values())
            assert outcome_key(runner) == baseline
        finally:
            runner.close()

    def test_double_drain_and_stray_restore_are_errors(self):
        runner, rules = healthy_runner()
        try:
            run_script(runner, rules, [ScenarioStep("drain", ("W",))])
            with pytest.raises(SimulationError):
                runner.drain_device("W")
            with pytest.raises(SimulationError):
                runner.restore_drained("A")  # never drained
        finally:
            runner.close()

    def test_drained_rules_survive_crash_restart(self):
        # The intended FIB lives with the controller: a crash inside the
        # drain window must not lose the rules queued for restore.
        runner, rules = healthy_runner()
        try:
            final = run_script(runner, rules, rolling_upgrade_steps("W"))[-1]
            assert final.converged
            assert all(s == "HOLDS" for s in final.statuses.values())
        finally:
            runner.close()


class TestUpgradeWindow:
    def test_full_window_trajectory(self):
        """drain -> crash -> restart -> restore, phase by phase."""
        runner, rules = healthy_runner()
        try:
            outcomes = run_script(runner, rules, rolling_upgrade_steps("W"))
            burst, drain, crash, restart, restore = outcomes
            assert all(s == "HOLDS" for s in burst.statuses.values())
            assert drain.converged
            assert all(s == "VIOLATED" for s in drain.statuses.values())
            # At quiescence the crash itself strands nothing: the drained
            # verdicts stand (no stale HOLDS) until neighbors churn.
            assert all(s == "VIOLATED" for s in crash.statuses.values())
            assert restart.converged
            assert restore.converged
            assert all(s == "HOLDS" for s in restore.statuses.values())
        finally:
            runner.close()

    def test_unknown_window_under_concurrent_churn(self):
        """A FIB change elsewhere while the device is down opens the
        honest-degradation window: flows into the crashed device give up,
        the affected invariants report UNKNOWN instead of a stale verdict,
        and the restart/restore tail clears it and reconverges."""
        runner, rules = healthy_runner(
            transport_config=TransportConfig(max_retries=4)
        )
        try:
            steps = [
                ScenarioStep("drain", ("W",)),
                ScenarioStep("crash", ("W",)),
                ScenarioStep("drain", ("D",)),  # D announces to dead W
                ScenarioStep("restart", ("W",)),
                ScenarioStep("restore", ("D",)),
                ScenarioStep("restore", ("W",)),
            ]
            outcomes = run_script(runner, rules, steps)
            window = outcomes[3]  # after drain(D), W still down
            assert not window.converged
            assert all(s == UNKNOWN for s in window.statuses.values())
            after_restart = outcomes[4]
            assert after_restart.converged
            assert UNKNOWN not in after_restart.statuses.values()
            final = outcomes[-1]
            assert final.converged
            assert all(s == "HOLDS" for s in final.statuses.values())
        finally:
            runner.close()


class TestUpgradeFamily:
    def test_upgrade_element_explores_clean_on_healthy_plane(self):
        # The full maintenance window, model-checked: every interleaving
        # of one upgrade against an off-path drain ends healthy.
        def harness(tracer=None, channel=None):
            ctx = PacketSpaceContext()
            topology = fig2a_example()
            p1 = ctx.ip_prefix("10.0.0.0/23")
            invariants = [
                reachability(p1, "S", "D"),
                waypoint_reachability(p1, "S", "W", "D"),
            ]
            runner = TulkunRunner(
                topology, ctx, invariants, cpu_scale=0.0,
                channel=channel if channel is not None else ReliableChannel(),
                tracer=tracer,
            )
            planes = build_linear_fig2_planes(ctx)
            rules = {
                dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
                for dev, plane in planes.items()
            }
            return runner, rules

        family = ScenarioFamily(
            elements=(
                FaultElement("upgrade", ("W",)),
                FaultElement("drain", ("B",)),
            ),
            max_faults=2,
        )
        report = explore_family(family, harness, minimize=False)
        assert report.violated == 0
        assert report.counterexamples == []
        assert report.explored + report.pruned == report.exhaustive_scenarios
