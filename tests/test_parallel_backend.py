"""Serial/process backend equivalence.

The process backend replays the same DVM protocol over OS processes with
round-based delivery, so its fixpoint must be *byte-identical* to the serial
simulator's: same verdict flags, same canonical source-node counting results
(merged ROBDD bytes), same violation regions — on correct planes, broken
planes, and across fail/recover churn.
"""

import pytest

from repro.bdd.serialize import serialize_predicate
from repro.core.library import reachability, waypoint_reachability
from repro.dataplane import Action, DevicePlane, Rule
from repro.datasets import build_dataset
from repro.parallel import (
    canonical_source_counts,
    cut_edges,
    partition_devices,
)
from repro.sim import TulkunRunner
from repro.topology import fattree, fig2a_example
from tests.conftest import build_fig2_planes


def fresh_rules(ds):
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in rules]
        for dev, rules in ds.rules_by_device.items()
    }


def serial_fingerprints(runner):
    verifiers = {}
    for dev, device in runner.network.devices.items():
        for inv_name, verifier in device.verifiers.items():
            verifiers[(dev, inv_name)] = verifier
    return canonical_source_counts(verifiers)


def verdict_flags(network, invariants):
    return {
        inv.name: {
            ingress: ok
            for ingress, (ok, _violations) in network.verdicts(inv.name).items()
        }
        for inv in invariants
    }


def violation_fingerprints(network, invariants):
    """Canonical (region bytes, counts, message) sets per (invariant, ingress)."""
    out = {}
    for inv in invariants:
        for ingress, (_ok, violations) in network.verdicts(inv.name).items():
            out[(inv.name, ingress)] = sorted(
                (serialize_predicate(v.region), tuple(v.counts), v.message)
                for v in violations
            )
    return out


@pytest.fixture(scope="module")
def ft4():
    return build_dataset("FT-4", pair_limit=6, seed=3)


class TestPartition:
    def test_covers_every_device_exactly_once(self, ft4):
        for strategy in ("locality", "round_robin"):
            assignment = partition_devices(ft4.topology, 3, strategy=strategy)
            assert sorted(assignment) == ft4.topology.devices
            assert set(assignment.values()) <= set(range(3))

    def test_deterministic(self, ft4):
        first = partition_devices(ft4.topology, 4)
        second = partition_devices(ft4.topology, 4)
        assert first == second

    def test_locality_cuts_fewer_edges_than_round_robin(self):
        topology = fattree(4)
        locality = partition_devices(topology, 4, strategy="locality")
        scattered = partition_devices(topology, 4, strategy="round_robin")
        assert cut_edges(topology, locality) <= cut_edges(topology, scattered)


class TestFattreeParity:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_burst_byte_identical(self, ft4, workers):
        serial = TulkunRunner(ft4.topology, ft4.ctx, ft4.invariants)
        serial_result = serial.burst_update(fresh_rules(ft4))

        parallel = TulkunRunner(
            ft4.topology, ft4.ctx, ft4.invariants,
            backend="process", workers=workers,
        )
        try:
            parallel_result = parallel.burst_update(fresh_rules(ft4))
            assert parallel_result.holds == serial_result.holds
            assert verdict_flags(parallel.network, ft4.invariants) == (
                verdict_flags(serial.network, ft4.invariants)
            )
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )
        finally:
            parallel.close()

    def test_broken_plane_same_violations(self, ft4):
        rules = fresh_rules(ds=ft4)
        # Blackhole the first invariant's ingress FIB entry.
        query = ft4.queries[0]
        target = ft4.ctx.ip_prefix(query.prefix)
        dev_rules = rules[query.ingress]
        for i, rule in enumerate(dev_rules):
            if rule.match == target:
                dev_rules[i] = Rule(rule.match, Action.drop(), rule.priority)
                break

        def rebuilt():
            return {
                dev: [Rule(r.match, r.action, r.priority) for r in rs]
                for dev, rs in rules.items()
            }

        serial = TulkunRunner(ft4.topology, ft4.ctx, ft4.invariants)
        serial_result = serial.burst_update(rebuilt())
        assert not all(serial_result.holds.values())

        parallel = TulkunRunner(
            ft4.topology, ft4.ctx, ft4.invariants,
            backend="process", workers=2,
        )
        try:
            parallel_result = parallel.burst_update(rebuilt())
            assert parallel_result.holds == serial_result.holds
            assert violation_fingerprints(
                parallel.network, ft4.invariants
            ) == violation_fingerprints(serial.network, ft4.invariants)
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )
        finally:
            parallel.close()

    def test_fail_and_recover_links_byte_identical(self, ft4):
        links = [list(ft4.topology.links())[0].endpoints()]

        serial = TulkunRunner(ft4.topology, ft4.ctx, ft4.invariants)
        serial.burst_update(fresh_rules(ft4))
        parallel = TulkunRunner(
            ft4.topology, ft4.ctx, ft4.invariants,
            backend="process", workers=3,
        )
        try:
            parallel.burst_update(fresh_rules(ft4))

            serial.fail_links(links)
            parallel.fail_links(links)
            assert verdict_flags(parallel.network, ft4.invariants) == (
                verdict_flags(serial.network, ft4.invariants)
            )
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )

            serial.recover_links(links)
            parallel.recover_links(links)
            assert verdict_flags(parallel.network, ft4.invariants) == (
                verdict_flags(serial.network, ft4.invariants)
            )
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )
        finally:
            parallel.close()


class TestFig2aParity:
    def scenario(self, ctx):
        p1 = ctx.ip_prefix("10.0.0.0/23")
        return [
            reachability(p1, "S", "D"),
            waypoint_reachability(p1, "S", "W", "D"),
        ]

    def test_example_byte_identical_through_churn(self, ctx):
        topology = fig2a_example()
        invariants = self.scenario(ctx)

        def rules():
            planes = build_fig2_planes(ctx)
            return {
                dev: [
                    Rule(r.match, r.action, r.priority) for r in plane.rules
                ]
                for dev, plane in planes.items()
            }

        serial = TulkunRunner(topology, ctx, invariants)
        serial_result = serial.burst_update(rules())
        parallel = TulkunRunner(
            topology, ctx, invariants, backend="process", workers=2
        )
        try:
            parallel_result = parallel.burst_update(rules())
            assert parallel_result.holds == serial_result.holds
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )
            assert violation_fingerprints(parallel.network, invariants) == (
                violation_fingerprints(serial.network, invariants)
            )

            serial.fail_links([("A", "W")])
            parallel.fail_links([("A", "W")])
            assert verdict_flags(parallel.network, invariants) == (
                verdict_flags(serial.network, invariants)
            )
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )

            serial.recover_links([("A", "W")])
            parallel.recover_links([("A", "W")])
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )
        finally:
            parallel.close()


class TestBackendPlumbing:
    def test_unknown_backend_rejected(self, ft4):
        with pytest.raises(ValueError):
            TulkunRunner(
                ft4.topology, ft4.ctx, ft4.invariants, backend="threads"
            )

    def test_burst_result_counters_populated(self, ft4):
        with TulkunRunner(
            ft4.topology, ft4.ctx, ft4.invariants,
            backend="process", workers=2,
        ) as runner:
            result = runner.burst_update(fresh_rules(ft4))
            assert result.events > 0
            assert result.messages > 0
            assert result.bytes_sent > 0
            assert result.verification_time > 0
            metrics = runner.network.metrics
            assert set(metrics.workers) == {0, 1}
            assert sum(m.num_devices for m in metrics.workers.values()) == (
                len(ft4.topology.devices)
            )
            assert metrics.parallel_wall > 0
            assert metrics.effective_parallelism() > 0

    def test_incremental_updates_through_process_backend(self, ft4):
        serial = TulkunRunner(ft4.topology, ft4.ctx, ft4.invariants)
        serial.burst_update(fresh_rules(ft4))
        with TulkunRunner(
            ft4.topology, ft4.ctx, ft4.invariants,
            backend="process", workers=2,
        ) as parallel:
            parallel.burst_update(fresh_rules(ft4))
            for runner in (serial, parallel):
                dev = ft4.queries[0].ingress
                victim = runner.network.devices[dev].plane.rules[0]
                broken = Rule(victim.match, Action.drop(), victim.priority)
                runner.incremental_updates([(dev, broken, victim.rule_id)])
                restored = Rule(victim.match, victim.action, victim.priority)
                runner.incremental_updates([(dev, restored, broken.rule_id)])
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )


class TestGcParity:
    """GC sweeps inside worker processes must be invisible on the wire:
    verdicts and canonical counting fingerprints stay byte-identical to a
    GC-free serial run."""

    def test_gc_enabled_workers_byte_identical(self, ft4):
        serial = TulkunRunner(ft4.topology, ft4.ctx, ft4.invariants)
        serial_result = serial.burst_update(fresh_rules(ft4))

        parallel = TulkunRunner(
            ft4.topology, ft4.ctx, ft4.invariants,
            backend="process", workers=2, gc_threshold=256,
        )
        try:
            parallel_result = parallel.burst_update(fresh_rules(ft4))
            assert parallel_result.holds == serial_result.holds
            assert verdict_flags(parallel.network, ft4.invariants) == (
                verdict_flags(serial.network, ft4.invariants)
            )
            assert parallel.network.source_fingerprints() == (
                serial_fingerprints(serial)
            )
            # The threshold is low enough that the workers really swept.
            engines = parallel.network.metrics.engines
            assert engines, "worker engine profiles were not collected"
            assert sum(e["gc_runs"] for e in engines.values()) > 0
        finally:
            parallel.close()
