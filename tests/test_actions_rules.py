"""Actions, transforms and rules."""

import pytest

from repro.dataplane import EXTERNAL, Action, GroupType, Rule, Transform
from repro.errors import DataPlaneError


class TestActionConstruction:
    def test_forward_all(self):
        action = Action.forward_all(["B", "A"])
        assert action.group == ("A", "B")  # sorted
        assert action.group_type is GroupType.ALL
        assert not action.is_drop

    def test_forward_any(self):
        action = Action.forward_any(["X"])
        assert action.group_type is GroupType.ANY

    def test_empty_group_rejected(self):
        with pytest.raises(DataPlaneError):
            Action.forward([])

    def test_duplicate_next_hops_rejected(self):
        with pytest.raises(DataPlaneError):
            Action(("A", "A"), GroupType.ALL)

    def test_drop(self):
        action = Action.drop()
        assert action.is_drop
        assert not action.delivers
        assert action.internal_next_hops() == ()

    def test_deliver(self):
        action = Action.deliver()
        assert action.delivers
        assert action.internal_next_hops() == ()

    def test_mixed_deliver_and_forward(self):
        action = Action.forward_all(["B", EXTERNAL])
        assert action.delivers
        assert action.internal_next_hops() == ("B",)

    def test_without_next_hop(self):
        action = Action.forward_all(["A", "B"])
        assert action.without_next_hop("A").group == ("B",)
        assert action.without_next_hop("A").without_next_hop("B").is_drop

    def test_hashable_for_lec_grouping(self):
        a = Action.forward_all(["A", "B"])
        b = Action.forward_all(["B", "A"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Action.forward_any(["A", "B"])

    def test_str_forms(self):
        assert str(Action.drop()) == "drop"
        assert "ALL" in str(Action.forward_all(["A"]))
        assert "ANY" in str(Action.forward_any(["A", "B"]))


class TestTransform:
    def test_apply_sets_field(self, ctx):
        t = Transform.set_fields(dst_port=8080)
        src = ctx.ip_prefix("10.0.0.0/24") & ctx.value("dst_port", 80)
        image = t.apply(src)
        assert image == ctx.ip_prefix("10.0.0.0/24") & ctx.value("dst_port", 8080)

    def test_apply_erases_old_value(self, ctx):
        t = Transform.set_fields(dst_port=8080)
        src = ctx.value("dst_port", 80) | ctx.value("dst_port", 443)
        image = t.apply(src)
        assert image == ctx.value("dst_port", 8080)

    def test_preimage_inverts_apply(self, ctx):
        t = Transform.set_fields(dst_port=8080)
        target = ctx.ip_prefix("10.0.0.0/24") & ctx.value("dst_port", 8080)
        pre = t.preimage(target)
        # Any dst_port maps in, as long as dst_ip matches.
        assert pre == ctx.ip_prefix("10.0.0.0/24")

    def test_preimage_of_disjoint_target_empty(self, ctx):
        t = Transform.set_fields(dst_port=8080)
        target = ctx.value("dst_port", 443)  # unreachable after rewrite
        assert t.preimage(target).is_empty

    def test_apply_then_preimage_superset(self, ctx):
        t = Transform.set_fields(dst_ip=0x0A000001)
        src = ctx.value("dst_port", 80)
        assert t.preimage(t.apply(src)).covers(src)

    def test_multi_field(self, ctx):
        t = Transform.set_fields(dst_port=80, proto=6)
        image = t.apply(ctx.universe)
        assert image == ctx.value("dst_port", 80) & ctx.value("proto", 6)

    def test_str(self):
        assert "dst_port=80" in str(Transform.set_fields(dst_port=80))


class TestRule:
    def test_ids_unique(self, ctx):
        a = Rule(ctx.universe, Action.drop())
        b = Rule(ctx.universe, Action.drop())
        assert a.rule_id != b.rule_id

    def test_sort_key_priority_then_recency(self, ctx):
        low = Rule(ctx.universe, Action.drop(), priority=1)
        high = Rule(ctx.universe, Action.drop(), priority=9)
        newer_high = Rule(ctx.universe, Action.drop(), priority=9)
        ordered = sorted([low, newer_high, high], key=Rule.sort_key)
        assert ordered[0] is newer_high  # ties break to newest
        assert ordered[-1] is low
