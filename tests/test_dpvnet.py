"""DPVNet construction: Figure 2c structure, product/enumeration agreement,
DAG invariants, suffix sharing."""

import pytest

from repro.automata import compile_regex, parse_regex
from repro.core.dpvnet import build_enumeration_dpvnet, build_product_dpvnet
from repro.core.counting import CountExp
from repro.core.invariant import Atom, Invariant, MatchKind, PathExpr
from repro.core.planner import Planner
from repro.errors import PlannerError
from repro.topology import fig2a_example, line, ring


def accept_all(_atom, _ingress, _path):
    return True


class TestFig2cStructure:
    def test_waypoint_dpvnet_matches_paper(self, ctx, fig2a):
        """The DPVNet of S.*W.*D over Fig. 2a must contain two B nodes and
        two W nodes (B1/B2, W1/W2 in Figure 2c) plus S1, A1, D1."""
        inv = Invariant(
            ctx.ip_prefix("10.0.0.0/23"),
            ("S",),
            Atom(PathExpr.parse("S .* W .* D", simple_only=True),
                 MatchKind.EXIST, CountExp(">=", 1)),
        )
        net = Planner(fig2a, ctx).build_dpvnet(inv)
        per_dev = {}
        for node in net.nodes.values():
            per_dev[node.dev] = per_dev.get(node.dev, 0) + 1
        assert per_dev == {"S": 1, "A": 1, "B": 2, "W": 2, "D": 1}
        # All valid paths (paper: [S,A,W,D], [S,A,B,W,D], [S,A,W,B,D]).
        paths = sorted(net.enumerate_paths())
        assert paths == [
            ("S", "A", "B", "W", "D"),
            ("S", "A", "W", "B", "D"),
            ("S", "A", "W", "D"),
        ]

    def test_accepting_node_is_destination(self, ctx, fig2a):
        inv = Invariant(
            ctx.ip_prefix("10.0.0.0/23"),
            ("S",),
            Atom(PathExpr.parse("S .* W .* D", simple_only=True),
                 MatchKind.EXIST, CountExp(">=", 1)),
        )
        net = Planner(fig2a, ctx).build_dpvnet(inv)
        accepting = [n for n in net.nodes.values() if any(n.accept)]
        assert len(accepting) == 1
        assert accepting[0].dev == "D"
        assert accepting[0].children == []


class TestConstructionsAgree:
    @pytest.mark.parametrize(
        "regex", ["S .* D", "S .* W .* D", "S [^B]* D", "S (A|W)* D"]
    )
    def test_same_path_sets(self, fig2a, regex):
        dfas = [compile_regex(parse_regex(regex), fig2a.devices)]
        product = build_product_dpvnet(fig2a, dfas, ["S"], max_hops=4)
        enum = build_enumeration_dpvnet(
            fig2a, dfas, ["S"], accept_all, max_hops=4, simple_only=False
        )
        assert sorted(product.enumerate_paths()) == sorted(enum.enumerate_paths())

    def test_simple_only_restricts(self):
        topo = ring(4)
        dfas = [compile_regex(parse_regex("d0 .* d2"), topo.devices)]
        loose = build_enumeration_dpvnet(
            topo, dfas, ["d0"], accept_all, max_hops=5, simple_only=False
        )
        simple = build_enumeration_dpvnet(
            topo, dfas, ["d0"], accept_all, max_hops=5, simple_only=True
        )
        loose_paths = set(loose.enumerate_paths())
        simple_paths = set(simple.enumerate_paths())
        assert simple_paths < loose_paths
        assert all(len(set(p)) == len(p) for p in simple_paths)


class TestDagInvariants:
    def test_reverse_topological_order(self, fig2a):
        dfas = [compile_regex(parse_regex("S .* D"), fig2a.devices)]
        net = build_product_dpvnet(fig2a, dfas, ["S"], max_hops=4)
        order = net.reverse_topological_order()
        position = {nid: i for i, nid in enumerate(order)}
        for nid, node in net.nodes.items():
            for child in node.children:
                assert position[child] < position[nid]

    def test_children_have_unique_devices(self, fig2a):
        dfas = [compile_regex(parse_regex("S .* D"), fig2a.devices)]
        net = build_product_dpvnet(fig2a, dfas, ["S"], max_hops=5)
        for nid, mapping in net.child_by_dev.items():
            assert len(mapping) == len(net.nodes[nid].children)

    def test_parents_consistent_with_children(self, fig2a):
        dfas = [compile_regex(parse_regex("S .* W .* D"), fig2a.devices)]
        net = build_product_dpvnet(fig2a, dfas, ["S"], max_hops=5)
        for nid, node in net.nodes.items():
            for child in node.children:
                assert nid in net.nodes[child].parents

    def test_cycle_unrolled_to_bound(self):
        """On a ring, S.*D has cycles; the unrolled DAG must stay acyclic and
        only contain paths within the bound."""
        topo = ring(4)
        dfas = [compile_regex(parse_regex("d0 .* d2"), topo.devices)]
        net = build_product_dpvnet(topo, dfas, ["d0"], max_hops=5)
        net.reverse_topological_order()  # raises on a cycle
        assert all(len(p) <= 6 for p in net.enumerate_paths())

    def test_no_valid_path_source_is_none(self):
        topo = line(3)
        dfas = [compile_regex(parse_regex("d0 d2"), topo.devices)]  # impossible hop
        net = build_product_dpvnet(topo, dfas, ["d0"])
        assert net.sources["d0"] is None
        assert net.num_nodes == 0

    def test_unknown_ingress_rejected(self, fig2a):
        dfas = [compile_regex(parse_regex("S .* D"), fig2a.devices)]
        with pytest.raises(PlannerError):
            build_product_dpvnet(fig2a, dfas, ["NOPE"])


class TestSuffixSharing:
    def test_line_topology_minimal(self):
        """On a chain, d0.*d4 has exactly one path: 5 nodes after merging."""
        topo = line(5)
        dfas = [compile_regex(parse_regex("d0 .* d4"), topo.devices)]
        net = build_product_dpvnet(topo, dfas, ["d0"], max_hops=4)
        assert net.num_nodes == 5

    def test_labels_unique(self, fig2a):
        dfas = [compile_regex(parse_regex("S .* W .* D"), fig2a.devices)]
        net = build_product_dpvnet(fig2a, dfas, ["S"], max_hops=4)
        labels = [n.label for n in net.nodes.values()]
        assert len(labels) == len(set(labels))

    def test_stats(self, fig2a):
        dfas = [compile_regex(parse_regex("S .* D"), fig2a.devices)]
        net = build_product_dpvnet(fig2a, dfas, ["S"], max_hops=4)
        stats = net.stats()
        assert stats["nodes"] == net.num_nodes
        assert stats["edges"] == net.num_edges


class TestMultiAtom:
    def test_vector_acceptance(self, ctx, fig2a):
        """Multicast S.*B and S.*D: acceptance flags are per atom."""
        inv = Invariant(
            ctx.ip_prefix("10.0.0.0/23"),
            ("S",),
            Atom(PathExpr.parse("S .* B", simple_only=True),
                 MatchKind.EXIST, CountExp(">=", 1)),
        )
        from repro.core.library import multicast

        inv = multicast(ctx.ip_prefix("10.0.0.0/23"), "S", ["B", "D"])
        net = Planner(fig2a, ctx).build_dpvnet(inv)
        assert net.arity == 2
        b_accepts = [n for n in net.nodes.values() if n.dev == "B" and n.accept[0]]
        d_accepts = [n for n in net.nodes.values() if n.dev == "D" and n.accept[1]]
        assert b_accepts and d_accepts
        # No node accepts the wrong atom's destination.
        assert not any(n.accept[1] for n in net.nodes.values() if n.dev == "B")
