"""On-device verifier unit behaviour (single device, hand-fed events)."""

import pytest

from repro.core.counting import CountExp
from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.core.invariant import Atom, Invariant, MatchKind, PathExpr
from repro.core.planner import Planner
from repro.core.verifier import OnDeviceVerifier
from repro.dataplane import Action, DevicePlane, Rule
from repro.errors import ProtocolError
from repro.topology import Topology, fig2a_example


@pytest.fixture
def chain_setup(ctx):
    """S - A - D chain with a reachability invariant; returns the tasks and
    fresh planes."""
    topo = Topology("chain")
    topo.add_link("S", "A")
    topo.add_link("A", "D")
    space = ctx.ip_prefix("10.0.0.0/24")
    inv = Invariant(
        space, ("S",),
        Atom(PathExpr.parse("S A D", simple_only=True), MatchKind.EXIST,
             CountExp(">=", 1)),
        name="chain_reach",
    )
    tasks = Planner(topo, ctx).decompose(inv)
    planes = {name: DevicePlane(name, ctx) for name in topo.devices}
    planes["S"].install_many([Rule(space, Action.forward_all(["A"]), 1)])
    planes["A"].install_many([Rule(space, Action.forward_all(["D"]), 1)])
    planes["D"].install_many([Rule(space, Action.deliver(), 1)])
    return topo, space, inv, tasks, planes


def verifier_for(tasks, planes, dev):
    return OnDeviceVerifier(tasks.tasks[dev], planes[dev])


class TestInitialize:
    def test_destination_announces_delivery(self, ctx, chain_setup):
        _topo, space, _inv, tasks, planes = chain_setup
        verifier = verifier_for(tasks, planes, "D")
        outgoing = verifier.initialize()
        assert len(outgoing) == 1
        dest_dev, message = outgoing[0]
        assert dest_dev == "A"
        assert isinstance(message, UpdateMessage)
        assert message.withdrawn == space
        ((pred, cs),) = message.results
        assert pred == space
        assert cs == ((1,),)

    def test_interior_node_with_no_news_stays_silent(self, ctx, chain_setup):
        """A has no CIBIn yet: its count is zero, which receivers assume by
        default — no message should be sent."""
        _topo, _space, _inv, tasks, planes = chain_setup
        verifier = verifier_for(tasks, planes, "A")
        assert verifier.initialize() == []

    def test_source_verdict_initially_violated(self, ctx, chain_setup):
        _topo, _space, _inv, tasks, planes = chain_setup
        verifier = verifier_for(tasks, planes, "S")
        verifier.initialize()
        ok, violations = verifier.verdicts["S"]
        assert not ok  # nothing announced yet → count 0 < 1


class TestUpdateHandling:
    def test_update_propagates_up_the_chain(self, ctx, chain_setup):
        _topo, space, _inv, tasks, planes = chain_setup
        d = verifier_for(tasks, planes, "D")
        a = verifier_for(tasks, planes, "A")
        s = verifier_for(tasks, planes, "S")
        s.initialize()
        a.initialize()
        ((_, msg_from_d),) = d.initialize()
        ((dest, msg_from_a),) = a.handle_update(msg_from_d)
        assert dest == "S"
        assert s.handle_update(msg_from_a) == []  # source: nothing upstream
        ok, _ = s.verdicts["S"]
        assert ok

    def test_foreign_node_update_rejected(self, ctx, chain_setup):
        _topo, space, _inv, tasks, planes = chain_setup
        s = verifier_for(tasks, planes, "S")
        with pytest.raises(ProtocolError):
            s.handle_update(
                UpdateMessage((99999, 1), space, ((space, ((1,),)),))
            )

    def test_duplicate_update_suppressed(self, ctx, chain_setup):
        """Receiving the same counting result twice must not re-announce."""
        _topo, _space, _inv, tasks, planes = chain_setup
        d = verifier_for(tasks, planes, "D")
        a = verifier_for(tasks, planes, "A")
        a.initialize()
        ((_, msg_from_d),) = d.initialize()
        first = a.handle_update(msg_from_d)
        assert len(first) == 1
        again = a.handle_update(msg_from_d)
        assert again == []


class TestInternalEvents:
    def test_lec_delta_triggers_announcement(self, ctx, chain_setup):
        _topo, space, _inv, tasks, planes = chain_setup
        a = verifier_for(tasks, planes, "A")
        d = verifier_for(tasks, planes, "D")
        a.initialize()
        ((_, msg),) = d.initialize()
        a.handle_update(msg)
        # A's rule flips to drop: count at A becomes 0 → announce upstream.
        rule = planes["A"].rules[0]
        deltas = planes["A"].replace_rule(
            rule.rule_id, Rule(space, Action.drop(), 1)
        )
        outgoing = a.handle_lec_deltas(deltas)
        assert len(outgoing) == 1
        _dest, message = outgoing[0]
        ((_pred, cs),) = message.results
        assert cs == ((0,),)

    def test_empty_deltas_noop(self, ctx, chain_setup):
        _topo, _space, _inv, tasks, planes = chain_setup
        a = verifier_for(tasks, planes, "A")
        assert a.handle_lec_deltas([]) == []

    def test_link_down_zeroes_counts(self, ctx, chain_setup):
        _topo, space, _inv, tasks, planes = chain_setup
        a = verifier_for(tasks, planes, "A")
        d = verifier_for(tasks, planes, "D")
        a.initialize()
        ((_, msg),) = d.initialize()
        a.handle_update(msg)
        outgoing = a.handle_link_change("D", is_up=False)
        assert len(outgoing) == 1
        ((_pred, cs),) = outgoing[0][1].results
        assert cs == ((0,),)

    def test_link_recovery_restores(self, ctx, chain_setup):
        _topo, space, _inv, tasks, planes = chain_setup
        a = verifier_for(tasks, planes, "A")
        d = verifier_for(tasks, planes, "D")
        a.initialize()
        ((_, msg),) = d.initialize()
        a.handle_update(msg)
        a.handle_link_change("D", is_up=False)
        outgoing = a.handle_link_change("D", is_up=True)
        # Count restored to 1 toward S.
        update = [m for _dest, m in outgoing if isinstance(m, UpdateMessage)]
        assert any(((1,),) in [cs for _p, cs in m.results] for m in update)


class TestStats:
    def test_counters_move(self, ctx, chain_setup):
        _topo, _space, _inv, tasks, planes = chain_setup
        a = verifier_for(tasks, planes, "A")
        d = verifier_for(tasks, planes, "D")
        a.initialize()
        ((_, msg),) = d.initialize()
        a.handle_update(msg)
        assert a.stats.updates_received == 1
        assert a.stats.updates_sent == 1
        assert a.stats.bytes_received > 0
        assert d.stats.updates_sent == 1
        assert a.memory_proxy() > 0
