"""Count-set algebra and Proposition 1 minimal counting information."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting import (
    CountExp,
    canonical,
    cross_sum,
    cross_sum_many,
    minimal_info,
    reduce_countset,
    singleton,
    union,
    union_many,
    unit_vec,
    zero_vec,
)

counts = st.lists(st.integers(0, 5), min_size=1, max_size=4).map(
    lambda xs: tuple(sorted({(x,) for x in xs}))
)


class TestAlgebra:
    def test_cross_sum_scalar(self):
        a = ((0,), (1,))
        b = ((1,), (2,))
        assert cross_sum(a, b) == ((1,), (2,), (3,))

    def test_union_dedupes(self):
        assert union(((1,),), ((1,), (0,))) == ((0,), (1,))

    def test_zero_is_cross_sum_identity(self):
        a = ((0,), (2,))
        assert cross_sum(a, singleton(zero_vec(1))) == a

    def test_vector_components_independent(self):
        a = singleton((1, 0))
        b = singleton((0, 2))
        assert cross_sum(a, b) == ((1, 2),)

    def test_cross_sum_many(self):
        sets = [singleton((1,)), singleton((2,)), ((0,), (1,))]
        assert cross_sum_many(sets, 1) == ((3,), (4,))

    def test_union_many(self):
        assert union_many([((1,),), ((2,),), ((1,),)]) == ((1,), (2,))

    def test_unit_vec(self):
        assert unit_vec(3, 1) == (0, 1, 0)

    @given(counts, counts, counts)
    @settings(max_examples=100, deadline=None)
    def test_cross_sum_associative_commutative(self, a, b, c):
        assert cross_sum(a, b) == cross_sum(b, a)
        assert cross_sum(cross_sum(a, b), c) == cross_sum(a, cross_sum(b, c))

    @given(counts, counts)
    @settings(max_examples=100, deadline=None)
    def test_union_commutative_idempotent(self, a, b):
        assert union(a, b) == union(b, a)
        assert union(a, a) == canonical(a)


class TestCountExp:
    @pytest.mark.parametrize(
        "op,bound,value,expected",
        [
            ("==", 1, 1, True), ("==", 1, 0, False),
            (">=", 1, 2, True), (">=", 1, 0, False),
            (">", 0, 1, True), (">", 1, 1, False),
            ("<=", 2, 2, True), ("<=", 2, 3, False),
            ("<", 1, 0, True), ("<", 1, 1, False),
        ],
    )
    def test_holds(self, op, bound, value, expected):
        assert CountExp(op, bound).holds(value) is expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            CountExp("!=", 1)
        with pytest.raises(ValueError):
            CountExp(">=", -1)


class TestMinimalInfo:
    def test_ge_keeps_min(self):
        assert minimal_info([3, 1, 2], CountExp(">=", 1)) == (1,)

    def test_le_keeps_max(self):
        assert minimal_info([3, 1, 2], CountExp("<=", 2)) == (3,)

    def test_eq_keeps_two_smallest(self):
        assert minimal_info([3, 1, 2], CountExp("==", 1)) == (1, 2)
        assert minimal_info([2], CountExp("==", 1)) == (2,)

    def test_empty(self):
        assert minimal_info([], CountExp(">=", 1)) == ()

    @given(
        st.lists(st.integers(0, 8), min_size=1, max_size=6),
        st.integers(0, 4),
        st.lists(st.integers(0, 4), min_size=0, max_size=3),
    )
    @settings(max_examples=120, deadline=None)
    def test_prop1_ge_soundness(self, downstream, bound, upstream_adds):
        """Proposition 1, >= case: after any monotone upstream additions,
        the reduced set's verdict equals the full set's verdict."""
        exp = CountExp(">=", bound)
        reduced = minimal_info(downstream, exp)
        for add in upstream_adds + [0]:
            full_counts = [c + add for c in downstream]
            reduced_counts = [c + add for c in reduced]
            assert (min(full_counts) >= bound) == (min(reduced_counts) >= bound)

    @given(
        st.lists(st.integers(0, 8), min_size=1, max_size=6),
        st.integers(0, 4),
        st.lists(st.integers(0, 4), min_size=0, max_size=3),
    )
    @settings(max_examples=120, deadline=None)
    def test_prop1_eq_soundness(self, downstream, bound, upstream_adds):
        """== case: the two smallest elements preserve both 'violated because
        multiple distinct counts' and the exact count when unique."""
        exp = CountExp("==", bound)
        reduced = minimal_info(downstream, exp)
        distinct_full = len(set(downstream)) > 1
        distinct_reduced = len(set(reduced)) > 1
        assert distinct_full == distinct_reduced
        if not distinct_full:
            for add in upstream_adds + [0]:
                assert exp.holds(downstream[0] + add) == exp.holds(reduced[0] + add)


class TestReduceCountset:
    def test_single_atom_reduction(self):
        cs = ((0,), (1,), (2,))
        assert reduce_countset(cs, [CountExp(">=", 1)]) == ((0,),)

    def test_none_keeps_full(self):
        cs = ((0,), (1,))
        assert reduce_countset(cs, [None]) == cs

    def test_empty_set(self):
        assert reduce_countset((), [CountExp(">=", 1)]) == ()

    def test_multi_atom_conservative(self):
        cs = ((0, 1), (1, 0), (2, 2))
        reduced = reduce_countset(cs, [CountExp(">=", 1), None])
        # Every kept vector is from the original set.
        assert set(reduced) <= set(cs)
        # The >= 1 minimum in component 0 survives.
        assert min(v[0] for v in reduced) == 0
