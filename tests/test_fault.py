"""Fault tolerance (§6): scene enumeration, fault plans, online recounting."""

import pytest

from repro.core.counting import CountExp
from repro.core.fault import FaultScene, compute_fault_plan, enumerate_scenes
from repro.core.invariant import (
    Atom,
    FaultSpec,
    Invariant,
    LengthFilter,
    MatchKind,
    PathExpr,
)
from repro.core.library import reachability
from repro.core.planner import Planner
from repro.dataplane import Rule
from repro.errors import PlannerError
from repro.sim import TulkunRunner
from repro.topology import Topology, fig2a_example, ring
from tests.conftest import build_fig2_planes


class TestSceneEnumeration:
    def test_any_k(self, fig2a):
        scenes = enumerate_scenes(fig2a, FaultSpec.up_to(1))
        # empty scene + one per link.
        assert len(scenes) == 1 + fig2a.num_links
        assert scenes[0] == frozenset()

    def test_any_2_ordering(self, fig2a):
        scenes = enumerate_scenes(fig2a, FaultSpec.up_to(2))
        sizes = [len(s) for s in scenes]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 2

    def test_explicit_scenes(self, fig2a):
        spec = FaultSpec.explicit([[("A", "B")], [("B", "W"), ("B", "D")]])
        scenes = enumerate_scenes(fig2a, spec)
        assert frozenset({("A", "B")}) in scenes
        assert frozenset({("B", "D"), ("B", "W")}) in scenes

    def test_max_scenes_cap(self, fig2a):
        scenes = enumerate_scenes(fig2a, FaultSpec.up_to(3), max_scenes=10)
        assert len(scenes) <= 11

    def test_invalid_any_k(self):
        with pytest.raises(Exception):
            FaultSpec.up_to(0)


class TestConcreteFilterPlan:
    def test_plan_reuses_base_dpvnet(self, ctx, fig2a):
        """No symbolic filters → the fault-tolerant DPVNet is the base one
        (Proposition 2, first half)."""
        space = ctx.ip_prefix("10.0.0.0/23")
        inv = reachability(space, "S", "D", fault_spec=FaultSpec.up_to(1))
        planner = Planner(fig2a, ctx)
        plan = compute_fault_plan(planner, inv)
        base = planner.build_dpvnet(inv)
        assert sorted(plan.net.enumerate_paths()) == sorted(base.enumerate_paths())
        assert plan.net.edge_scenes is None

    def test_intolerable_scene_detected(self, ctx):
        """On a chain, failing the only link makes reachability intolerable."""
        topo = Topology("chain")
        topo.add_link("S", "A")
        topo.add_link("A", "D")
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = reachability(space, "S", "D", fault_spec=FaultSpec.up_to(1))
        plan = compute_fault_plan(Planner(topo, ctx), inv)
        failed = {scene.failed_links for scene in plan.intolerable}
        assert frozenset({("A", "D")}) in failed
        assert frozenset({("A", "S")}) in failed

    def test_no_fault_spec_rejected(self, ctx, fig2a):
        inv = reachability(ctx.ip_prefix("10.0.0.0/23"), "S", "D")
        with pytest.raises(PlannerError):
            compute_fault_plan(Planner(fig2a, ctx), inv)

    def test_scene_lookup(self, ctx, fig2a):
        space = ctx.ip_prefix("10.0.0.0/23")
        inv = reachability(space, "S", "D", fault_spec=FaultSpec.up_to(1))
        plan = compute_fault_plan(Planner(fig2a, ctx), inv)
        scene = plan.scene_for([("A", "B")])
        assert scene is not None
        assert scene.failed_links == frozenset({("A", "B")})
        assert plan.scene_for([("A", "B"), ("B", "D")]) is None  # not any_1


class TestSymbolicFilterPlan:
    def _symbolic_invariant(self, ctx, space, k=2):
        return Invariant(
            space, ("S",),
            Atom(
                PathExpr.parse(
                    "S .* D", (LengthFilter("<=", "shortest", 1),), True
                ),
                MatchKind.EXIST, CountExp(">=", 1),
            ),
            FaultSpec.up_to(k),
            name="symbolic_reach",
        )

    def test_labeled_net_covers_every_scene(self, ctx, fig2a):
        """Figure 8: the fault-tolerant DPVNet of (≤ shortest+1) reachability
        under 2-link-failure holds each scene's valid paths under its own
        labels."""
        space = ctx.ip_prefix("10.0.0.0/23")
        inv = self._symbolic_invariant(ctx, space)
        planner = Planner(fig2a, ctx)
        plan = compute_fault_plan(planner, inv)
        assert plan.net.edge_scenes is not None
        # Cross-check per scene: walking only scene-labeled edges yields the
        # same paths a per-scene planner computes.
        for scene in plan.scenes:
            topo_f = fig2a.without_links(scene.failed_links)
            expected = sorted(
                Planner(topo_f, ctx).build_dpvnet(inv, topo_f).enumerate_paths()
            )
            got = sorted(self._scene_paths(plan.net, scene.scene_id))
            assert got == expected, f"scene {scene.failed_links}"

    @staticmethod
    def _scene_paths(net, scene_id):
        paths = []
        accept_scenes = getattr(net, "accept_scenes", {})

        def walk(nid, prefix):
            node = net.node(nid)
            here = prefix + (node.dev,)
            for i, flag in enumerate(node.accept):
                if not flag:
                    continue
                scenes = accept_scenes.get((nid, i))
                if scenes is None or scene_id in scenes:
                    paths.append(here)
                    break
            for child in node.children:
                scenes = (net.edge_scenes or {}).get((nid, child))
                if scenes is None or scene_id in scenes:
                    walk(child, here)

        for source in net.sources.values():
            if source is not None:
                walk(source, ())
        return paths

    def test_longer_paths_appear_under_failures(self, ctx):
        """== shortest on a ring: failing a link doubles the shortest length,
        so the fault scene's valid paths differ from the base scene's."""
        topo = ring(4)
        space = ctx.ip_prefix("10.0.0.0/24")
        inv = Invariant(
            space, ("d0",),
            Atom(
                PathExpr.parse("d0 .* d1", (LengthFilter("==", "shortest"),), True),
                MatchKind.EXIST, CountExp(">=", 1),
            ),
            FaultSpec.explicit([[("d0", "d1")]]),
            name="ring_shortest",
        )
        plan = compute_fault_plan(Planner(topo, ctx), inv)
        base_paths = set(self._scene_paths(plan.net, 0))
        scene_paths = set(self._scene_paths(plan.net, 1))
        assert base_paths == {("d0", "d1")}
        assert scene_paths == {("d0", "d3", "d2", "d1")}


class TestOnlineRecounting:
    def test_scene_activation_end_to_end(self, ctx, fig2a, fig2_spaces):
        """Deploy with a fault-tolerant DPVNet, fail links, activate the
        scene, verify recounting matches the per-scene ground truth."""
        space = fig2_spaces[0]
        inv = Invariant(
            space, ("S",),
            Atom(
                PathExpr.parse("S .* D", (LengthFilter("<=", "shortest", 1),), True),
                MatchKind.EXIST, CountExp(">=", 1),
            ),
            FaultSpec.up_to(1),
            name="ft_reach",
        )
        planner = Planner(fig2a, ctx)
        plan = compute_fault_plan(planner, inv)
        runner = TulkunRunner(
            fig2a, ctx, [inv], prebuilt_nets={inv.name: plan.net}
        )
        planes = build_fig2_planes(ctx)
        runner.burst_update(
            {dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
             for dev, plane in planes.items()}
        )
        network = runner.network
        base_verdict = network.all_hold(inv.name)

        scene = plan.scene_for([("W", "D")])
        assert scene is not None
        duration = runner.fail_links([("W", "D")], scene_id=scene.scene_id)
        assert duration >= 0
        # Ground truth on the failed topology.
        topo_f = fig2a.without_links([("W", "D")])
        offline = Planner(topo_f, ctx).verify(
            inv, {d: network.devices[d].plane for d in fig2a.devices}
        )
        assert network.all_hold(inv.name) == offline.holds
        # Recover and return to the base scene.
        runner.recover_links([("W", "D")])
        assert network.all_hold(inv.name) == base_verdict
